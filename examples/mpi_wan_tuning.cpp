// Scenario: an MPI application spans two campuses. Shows the paper's
// two MPI-level optimizations working together on a live job:
//   1. adaptive rendezvous-threshold tuning (Figure 9), chosen by
//      measuring the path RTT at startup;
//   2. WAN-aware hierarchical broadcast (Figure 11).
//
//   $ ./mpi_wan_tuning [distance_km]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"
#include "core/wan_opt.hpp"
#include "ib/perftest.hpp"
#include "mpi/mpi.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  const double km = argc > 1 ? std::atof(argv[1]) : 200.0;
  const sim::Duration delay = core::delay_for_km(km);
  std::printf("MPI across %.0f km of IB WAN\n\n", km);

  // Step 1: probe the path (a middleware would do this at init).
  sim::Duration rtt;
  {
    core::Testbed probe(1, delay);
    const auto lat = ib::perftest::run_latency(
        probe.fabric(), probe.node_a(), probe.node_b(),
        ib::perftest::Transport::kRc, ib::perftest::Op::kSendRecv,
        {.msg_size = 8, .iterations = 20});
    rtt = static_cast<sim::Duration>(lat.avg_us * 2 * 1000);
  }
  const core::AdaptiveRendezvousThreshold policy;
  const std::uint64_t threshold = policy.threshold_for_rtt(rtt);
  std::printf("measured RTT %.0f us -> rendezvous threshold %llu KB\n",
              static_cast<double>(rtt) / 1000.0,
              static_cast<unsigned long long>(threshold >> 10));

  // Step 2: medium-message bandwidth, default vs adapted threshold.
  const core::mpibench::OsuConfig base{.msg_size = 16 << 10,
                                       .window = 64,
                                       .iterations = 6};
  core::Testbed tb1(1, delay);
  const double before = core::mpibench::osu_bw(tb1, base);
  core::Testbed tb2(1, delay);
  auto tuned = base;
  tuned.rendezvous_threshold = threshold;
  const double after = core::mpibench::osu_bw(tb2, tuned);
  std::printf("16 KB message bandwidth: %8.1f -> %8.1f MB/s (%+.0f%%)\n",
              before, after, (after / before - 1.0) * 100.0);

  // Step 3: broadcast across 2 x 16 ranks, default vs hierarchical.
  core::Testbed tb3(16, delay);
  const double original = core::mpibench::bcast_latency_us(
      tb3, {.ranks_per_cluster = 16, .msg_size = 128 << 10,
            .iterations = 3, .hierarchical = false});
  core::Testbed tb4(16, delay);
  const double modified = core::mpibench::bcast_latency_us(
      tb4, {.ranks_per_cluster = 16, .msg_size = 128 << 10,
            .iterations = 3, .hierarchical = true});
  std::printf("128 KB bcast latency:    %8.0f -> %8.0f us (%.1fx)\n",
              original, modified, original / modified);
  return 0;
}
