// ThreadSanitizer exercise for the site-parallel engine (ctest label
// `tsan`): the whole library is recompiled with -fsanitize=thread and
// a two-site PDES run executes with a real worker pool (IBWAN_THREADS
// =2), so any cross-site access that bypasses the Channel API or the
// barrier protocol trips TSan and fails the test. Plain main() — the
// pass/fail signal is the sanitizer's exit code plus the differential
// check below.
#include <cstdio>
#include <cstdlib>
#include <cstdint>

#include "apps/nas.hpp"
#include "core/testbed.hpp"
#include "mpi/mpi.hpp"

namespace {

struct Run {
  double seconds = 0;
  std::uint64_t events = 0;
  int sites = 0;
};

Run nas_ft_two_site() {
  using namespace ibwan;
  core::Testbed tb(core::TestbedOptions{.nodes_a = 4,
                                        .nodes_b = 4,
                                        .wan_delay = 1'000'000,
                                        .par_sites = 2});
  mpi::Job job(tb.fabric(), mpi::Job::split_placement(tb.fabric(), 4));
  const double secs = apps::run_nas(
      job, apps::make_ft({.cls = apps::NasClass::kS, .iterations = 1}));
  return {secs, tb.engine().events_executed(), tb.engine().sites()};
}

}  // namespace

int main() {
  ::setenv("IBWAN_THREADS", "1", 1);
  const Run seq = nas_ft_two_site();
  ::setenv("IBWAN_THREADS", "2", 1);
  const Run par = nas_ft_two_site();
  if (par.sites != 2) {
    std::fprintf(stderr, "tsan_pdes: parallel run fell back to %d site(s)\n",
                 par.sites);
    return 1;
  }
  if (seq.seconds != par.seconds || seq.events != par.events) {
    std::fprintf(stderr,
                 "tsan_pdes: divergence (seq %.17g/%llu vs par %.17g/%llu)\n",
                 seq.seconds, static_cast<unsigned long long>(seq.events),
                 par.seconds, static_cast<unsigned long long>(par.events));
    return 1;
  }
  std::printf("tsan_pdes: two-site run matches sequential (%llu events)\n",
              static_cast<unsigned long long>(par.events));
  return 0;
}
