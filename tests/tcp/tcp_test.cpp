#include "tcp/tcp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::tcp {
namespace {

using namespace ibwan::sim::literals;

/// Two hosts across the WAN with IPoIB devices and TCP stacks.
struct TcpWorld {
  explicit TcpWorld(ipoib::IpoibConfig dev_cfg = {}, TcpConfig tcp_cfg = {},
                    net::FabricConfig fab_cfg = {.nodes_a = 1, .nodes_b = 1})
      : fabric(sim, fab_cfg),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        dev_a(hca_a, dev_cfg),
        dev_b(hca_b, dev_cfg),
        stack_a(dev_a, tcp_cfg),
        stack_b(dev_b, tcp_cfg) {
    ipoib::IpoibDevice::link(dev_a, dev_b);
  }

  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a, hca_b;
  ipoib::IpoibDevice dev_a, dev_b;
  TcpStack stack_a, stack_b;
};

TEST(Tcp, HandshakeEstablishesBothSides) {
  TcpWorld w;
  TcpConnection* server = nullptr;
  w.stack_b.listen(5001, [&](TcpConnection& c) { server = &c; });
  TcpConnection& client = w.stack_a.connect(1, 5001);
  bool established = false;
  client.set_on_established([&] { established = true; });
  w.sim.run();
  EXPECT_TRUE(established);
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->established());
}

TEST(Tcp, TransfersExactByteCount) {
  TcpWorld w;
  std::uint64_t delivered = 0;
  w.stack_b.listen(5001, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { delivered += n; });
  });
  TcpConnection& client = w.stack_a.connect(1, 5001);
  client.send(1'000'000);
  w.sim.run();
  EXPECT_EQ(delivered, 1'000'000u);
  EXPECT_EQ(client.bytes_acked(), 1'000'000u);
}

TEST(Tcp, SendBeforeEstablishedIsBuffered) {
  TcpWorld w;
  std::uint64_t delivered = 0;
  w.stack_b.listen(5001, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { delivered += n; });
  });
  TcpConnection& client = w.stack_a.connect(1, 5001);
  client.send(50'000);  // queued during the handshake
  w.sim.run();
  EXPECT_EQ(delivered, 50'000u);
}

TEST(Tcp, MultipleSendsAccumulate) {
  TcpWorld w;
  std::uint64_t delivered = 0;
  w.stack_b.listen(5001, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { delivered += n; });
  });
  TcpConnection& client = w.stack_a.connect(1, 5001);
  for (int i = 0; i < 10; ++i) client.send(12'345);
  w.sim.run();
  EXPECT_EQ(delivered, 123'450u);
}

TEST(Tcp, BidirectionalTransfer) {
  TcpWorld w;
  std::uint64_t fwd = 0, rev = 0;
  TcpConnection* server = nullptr;
  w.stack_b.listen(5001, [&](TcpConnection& c) {
    server = &c;
    c.set_on_delivered([&](std::uint64_t n) { fwd += n; });
    c.send(200'000);
  });
  TcpConnection& client = w.stack_a.connect(1, 5001);
  client.set_on_delivered([&](std::uint64_t n) { rev += n; });
  client.send(300'000);
  w.sim.run();
  EXPECT_EQ(fwd, 300'000u);
  EXPECT_EQ(rev, 200'000u);
}

double measure_throughput(TcpWorld& w, std::uint64_t bytes) {
  w.stack_b.listen(5001, [&](TcpConnection&) {});
  TcpConnection& client = w.stack_a.connect(1, 5001);
  client.send(bytes);
  sim::Time done_at = 0;
  client.set_on_acked([&](std::uint64_t acked) {
    if (acked == bytes) done_at = w.sim.now();
  });
  w.sim.run();
  EXPECT_GT(done_at, 0u);
  return static_cast<double>(bytes) / sim::to_seconds(done_at) / 1e6;
}

TEST(Tcp, UdModeThroughputIsStackBound) {
  // IPoIB-UD single stream lands well below verbs bandwidth (Fig 6).
  TcpWorld w;
  const double mbps = measure_throughput(w, 64 << 20);
  EXPECT_GT(mbps, 250.0);
  EXPECT_LT(mbps, 550.0);
}

TEST(Tcp, ConnectedMode64kMtuIsMuchFaster) {
  ipoib::IpoibConfig dev;
  dev.mode = ipoib::Mode::kConnected;
  dev.mtu = ipoib::kConnectedIpMtu;
  TcpWorld w(dev);
  const double mbps = measure_throughput(w, 256 << 20);
  // Figure 7: ~890 MB/s with the 64 KB MTU.
  EXPECT_GT(mbps, 750.0);
  EXPECT_LT(mbps, 1000.0);
}

TEST(Tcp, SmallWindowCollapsesUnderWanDelay) {
  TcpConfig small;
  small.window_bytes = 64 << 10;
  TcpWorld w({}, small);
  w.fabric.set_wan_delay(1000_us);
  const double mbps = measure_throughput(w, 4 << 20);
  // 64 KB / ~2 ms RTT ~= 32 MB/s.
  EXPECT_LT(mbps, 40.0);
}

TEST(Tcp, LargerWindowsHelpUnderDelay) {
  auto run = [](std::uint32_t wnd) {
    TcpConfig cfg;
    cfg.window_bytes = wnd;
    TcpWorld w({}, cfg);
    w.fabric.set_wan_delay(1000_us);
    return measure_throughput(w, 16 << 20);
  };
  const double w64k = run(64 << 10);
  const double w512k = run(512 << 10);
  EXPECT_GT(w512k, 3.0 * w64k);
}

TEST(Tcp, RecoversFromWanLoss) {
  net::FabricConfig fab{.nodes_a = 1, .nodes_b = 1};
  fab.longbow.loss_rate = 0.005;
  TcpWorld w({}, {}, fab);
  w.sim.seed(3);
  std::uint64_t delivered = 0;
  w.stack_b.listen(5001, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { delivered += n; });
  });
  TcpConnection& client = w.stack_a.connect(1, 5001);
  client.send(8 << 20);
  w.sim.run();
  EXPECT_EQ(delivered, 8u << 20);
  EXPECT_EQ(client.bytes_acked(), 8u << 20);
  EXPECT_GT(client.stats().retransmits + client.stats().fast_retransmits,
            0u);
}

TEST(Tcp, SlowStartRampsCwnd) {
  TcpWorld w;
  w.stack_b.listen(5001, [&](TcpConnection&) {});
  TcpConnection& client = w.stack_a.connect(1, 5001);
  const double cwnd0 = client.cwnd_bytes();
  client.send(4 << 20);
  w.sim.run();
  EXPECT_GT(client.cwnd_bytes(), cwnd0 * 4);
}

TEST(Tcp, TwoConnectionsShareOneDeviceFairly) {
  TcpWorld w;
  std::uint64_t d1 = 0, d2 = 0;
  w.stack_b.listen(5001, [&](TcpConnection& c) {
    static int n = 0;
    auto* target = (n++ == 0) ? &d1 : &d2;
    c.set_on_delivered([target](std::uint64_t x) { *target += x; });
  });
  w.stack_a.connect(1, 5001).send(4 << 20);
  w.stack_a.connect(1, 5001).send(4 << 20);
  w.sim.run();
  EXPECT_EQ(d1, 4u << 20);
  EXPECT_EQ(d2, 4u << 20);
}

TEST(Ipoib, DatagramModeRejectsOversizedPacket) {
  TcpWorld w;
  EXPECT_EQ(w.dev_a.config().mtu, ipoib::kUdIpMtu);
}

TEST(Ipoib, DeviceCountsTraffic) {
  TcpWorld w;
  w.stack_b.listen(5001, [&](TcpConnection&) {});
  w.stack_a.connect(1, 5001).send(100'000);
  w.sim.run();
  EXPECT_GT(w.dev_a.stats().ip_tx, 45u);  // ~50 data segments plus SYN
  EXPECT_GT(w.dev_b.stats().ip_rx, 45u);
}

}  // namespace
}  // namespace ibwan::tcp
