// Loss-recovery accounting and tail-loss regressions.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "net/wan.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::tcp {
namespace {

using namespace ibwan::sim::literals;

struct World {
  World(bool sack, double loss, sim::Duration delay, std::uint64_t seed = 3)
      : fabric(sim, make_fabric(loss)),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        dev_a(hca_a, {}),
        dev_b(hca_b, {}),
        stack_a(dev_a, make_tcp(sack)),
        stack_b(dev_b, make_tcp(sack)) {
    sim.seed(seed);
    fabric.set_wan_delay(delay);
    ipoib::IpoibDevice::link(dev_a, dev_b);
  }
  static net::FabricConfig make_fabric(double loss) {
    net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
    fc.longbow.loss_rate = loss;
    return fc;
  }
  static TcpConfig make_tcp(bool sack) {
    TcpConfig cfg;
    cfg.sack = sack;
    return cfg;
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a, hca_b;
  ipoib::IpoibDevice dev_a, dev_b;
  TcpStack stack_a, stack_b;
};

struct Outcome {
  std::uint64_t delivered = 0;
  double seconds = 0;
  TcpConnection::Stats stats;
};

Outcome transfer(World& w, std::uint64_t bytes,
                 std::optional<TcpConfig> cfg = std::nullopt) {
  Outcome out;
  w.stack_b.listen(7, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { out.delivered += n; });
  });
  TcpConnection& c = w.stack_a.connect(1, 7, cfg);
  c.send(bytes);
  sim::Time done = 0;
  c.set_on_acked([&](std::uint64_t acked) {
    if (acked == bytes) done = w.sim.now();
  });
  w.sim.run();
  out.seconds = sim::to_seconds(done);
  out.stats = c.stats();
  return out;
}

TEST(TcpRecovery, RetransmitsCountResentSegmentsNotEpisodes) {
  // Regression: Stats::retransmits used to tick once per recovery
  // episode (the per-segment accounting in pump() compared snd_nxt_
  // against snd_una_ *after* the go-back-N rewind had equalized them,
  // so it never fired). Go-back-N resends a whole flight per episode;
  // the segment count must exceed the episode count.
  World w(/*sack=*/false, /*loss=*/0.01, /*delay=*/1000_us);
  const auto out = transfer(w, 8 << 20);
  EXPECT_EQ(out.delivered, 8u << 20);
  EXPECT_GT(out.stats.retransmits, 0u);
  EXPECT_GT(out.stats.retransmits,
            out.stats.rto_fires + out.stats.fast_retransmits);
}

TEST(TcpRecovery, SackResendsTailHoleWithoutRtoFloor) {
  // Regression: retransmit_holes() only resent the gaps *between* SACK
  // blocks. A lost tail segment — above the highest SACK block, below
  // snd_nxt_ — was never resent by the SACK path, so every tail loss
  // ate a full min_rto (2 ms) stall.
  World w(/*sack=*/true, /*loss=*/0.0, /*delay=*/0);
  // A large initial cwnd puts all 12 segments on the wire back to back,
  // so the Nth full-size packet on the WAN is deterministically data
  // segment N-1's first transmission.
  tcp::TcpConfig tcfg = World::make_tcp(true);
  tcfg.init_cwnd_segs = 16;
  const std::uint32_t mss = w.stack_a.effective_mss(tcfg);
  const std::uint64_t bytes = 12ull * mss;

  // Deterministically kill the first transmission of data segment 5
  // (creates SACK blocks and dup acks) and of segment 11 — the tail.
  // Counting only full-size packets skips the SYN and pure acks.
  auto data_count = std::make_shared<int>(0);
  w.fabric.longbows()->wan_link_a_to_b().set_loss_model(
      [data_count, mss](const net::Packet& p) {
        if (p.wire_size < mss) return false;
        ++*data_count;
        return *data_count == 6 || *data_count == 12;
      });

  const auto out = transfer(w, bytes, tcfg);
  EXPECT_EQ(out.delivered, bytes);
  // The tail hole is recovered inside the fast-recovery episode: no
  // retransmission timer fires and the transfer finishes well under the
  // 2 ms RTO floor it used to pay.
  EXPECT_EQ(out.stats.rto_fires, 0u);
  EXPECT_LT(out.seconds, 0.0015);
  EXPECT_GT(out.stats.retransmits, 0u);
}

}  // namespace
}  // namespace ibwan::tcp
