// Selective acknowledgment: conservation, marker exactly-once, and the
// recovery advantage over go-back-N on a lossy WAN.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::tcp {
namespace {

using namespace ibwan::sim::literals;

struct SackWorld {
  SackWorld(bool sack, double loss, sim::Duration delay,
            std::uint64_t seed = 3)
      : fabric(sim, make_fabric(loss)),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        dev_a(hca_a, {}),
        dev_b(hca_b, {}),
        stack_a(dev_a, make_tcp(sack)),
        stack_b(dev_b, make_tcp(sack)) {
    sim.seed(seed);
    fabric.set_wan_delay(delay);
    ipoib::IpoibDevice::link(dev_a, dev_b);
  }
  static net::FabricConfig make_fabric(double loss) {
    net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
    fc.longbow.loss_rate = loss;
    return fc;
  }
  static TcpConfig make_tcp(bool sack) {
    TcpConfig cfg;
    cfg.sack = sack;
    return cfg;
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a, hca_b;
  ipoib::IpoibDevice dev_a, dev_b;
  TcpStack stack_a, stack_b;
};

struct Outcome {
  std::uint64_t delivered = 0;
  double seconds = 0;
  TcpConnection::Stats stats;
};

Outcome transfer(SackWorld& w, std::uint64_t bytes) {
  Outcome out;
  w.stack_b.listen(7, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { out.delivered += n; });
  });
  TcpConnection& c = w.stack_a.connect(1, 7);
  c.send(bytes);
  sim::Time done = 0;
  c.set_on_acked([&](std::uint64_t acked) {
    if (acked == bytes) done = w.sim.now();
  });
  w.sim.run();
  out.seconds = sim::to_seconds(done);
  out.stats = c.stats();
  return out;
}

TEST(TcpSack, ConservationUnderHeavyLoss) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    SackWorld w(true, 0.02, 100_us, seed);
    const auto out = transfer(w, 8 << 20);
    EXPECT_EQ(out.delivered, 8u << 20) << seed;
  }
}

TEST(TcpSack, MarkersExactlyOnceUnderLoss) {
  SackWorld w(true, 0.02, 100_us);
  std::vector<int> got;
  w.stack_b.listen(7, [&](TcpConnection& c) {
    c.set_on_marker([&](std::shared_ptr<const void> m) {
      got.push_back(*static_cast<const int*>(m.get()));
    });
  });
  TcpConnection& c = w.stack_a.connect(1, 7);
  for (int i = 0; i < 80; ++i) {
    c.send_marked(10'000, std::make_shared<int>(i));
  }
  w.sim.run();
  ASSERT_EQ(got.size(), 80u);
  for (int i = 0; i < 80; ++i) EXPECT_EQ(got[i], i);
}

TEST(TcpSack, BeatsGoBackNOnLossyWan) {
  // Average a few seeds: with holes-only retransmission the goodput
  // should clearly exceed go-back-N at the same loss rate.
  double t_sack = 0, t_gbn = 0;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    SackWorld ws(true, 0.01, 1000_us, seed);
    t_sack += transfer(ws, 8 << 20).seconds;
    SackWorld wg(false, 0.01, 1000_us, seed);
    t_gbn += transfer(wg, 8 << 20).seconds;
  }
  EXPECT_LT(t_sack, t_gbn * 0.9);
}

TEST(TcpSack, NoLossBehavesLikeBaseline) {
  SackWorld ws(true, 0, 0);
  const auto s = transfer(ws, 16 << 20);
  SackWorld wb(false, 0, 0);
  const auto b = transfer(wb, 16 << 20);
  EXPECT_NEAR(s.seconds, b.seconds, b.seconds * 0.02);
  EXPECT_EQ(s.stats.retransmits, 0u);
}

TEST(TcpSack, OutOfOrderBufferMergesRanges) {
  // Drop-induced holes at high bandwidth produce many disjoint ranges;
  // all must drain with no duplicate delivery.
  SackWorld w(true, 0.05, 100_us, 9);
  const auto out = transfer(w, 4 << 20);
  EXPECT_EQ(out.delivered, 4u << 20);  // exactly once
}

}  // namespace
}  // namespace ibwan::tcp
