// Record-marking (the RPC framing carried on the TCP stream):
// exactly-once, in-order marker delivery including under loss.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::tcp {
namespace {

struct MarkerWorld {
  explicit MarkerWorld(double loss = 0)
      : fabric(sim, make_fabric(loss)),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        dev_a(hca_a, {}),
        dev_b(hca_b, {}),
        stack_a(dev_a),
        stack_b(dev_b) {
    ipoib::IpoibDevice::link(dev_a, dev_b);
  }
  static net::FabricConfig make_fabric(double loss) {
    net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
    fc.longbow.loss_rate = loss;
    return fc;
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a, hca_b;
  ipoib::IpoibDevice dev_a, dev_b;
  TcpStack stack_a, stack_b;
};

std::shared_ptr<const int> tag(int v) { return std::make_shared<int>(v); }

TEST(TcpMarkers, DeliveredInOrder) {
  MarkerWorld w;
  std::vector<int> got;
  w.stack_b.listen(9, [&](TcpConnection& c) {
    c.set_on_marker([&](std::shared_ptr<const void> m) {
      got.push_back(*static_cast<const int*>(m.get()));
    });
  });
  TcpConnection& c = w.stack_a.connect(1, 9);
  for (int i = 0; i < 50; ++i) c.send_marked(1000 + i, tag(i));
  w.sim.run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
}

TEST(TcpMarkers, TinyRecordsShareOneSegment) {
  MarkerWorld w;
  std::vector<int> got;
  w.stack_b.listen(9, [&](TcpConnection& c) {
    c.set_on_marker([&](std::shared_ptr<const void> m) {
      got.push_back(*static_cast<const int*>(m.get()));
    });
  });
  TcpConnection& c = w.stack_a.connect(1, 9);
  // 10 records of 16 bytes: several markers inside one MSS.
  for (int i = 0; i < 10; ++i) c.send_marked(16, tag(i));
  w.sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(TcpMarkers, LargeRecordSpansManySegments) {
  MarkerWorld w;
  int fired = 0;
  std::uint64_t delivered_at_marker = 0;
  w.stack_b.listen(9, [&](TcpConnection& c) {
    c.set_on_marker([&](std::shared_ptr<const void>) {
      ++fired;
      delivered_at_marker = c.bytes_delivered();
    });
  });
  TcpConnection& c = w.stack_a.connect(1, 9);
  c.send_marked(1 << 20, tag(1));
  w.sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(delivered_at_marker, 1u << 20);  // fires with the last byte
}

TEST(TcpMarkers, ExactlyOnceUnderLoss) {
  MarkerWorld w(0.01);
  w.sim.seed(77);
  std::vector<int> got;
  w.stack_b.listen(9, [&](TcpConnection& c) {
    c.set_on_marker([&](std::shared_ptr<const void> m) {
      got.push_back(*static_cast<const int*>(m.get()));
    });
  });
  TcpConnection& c = w.stack_a.connect(1, 9);
  for (int i = 0; i < 100; ++i) c.send_marked(5000, tag(i));
  w.sim.run();
  ASSERT_EQ(got.size(), 100u) << "markers lost or duplicated";
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(c.stats().retransmits + c.stats().fast_retransmits, 0u);
}

TEST(TcpMarkers, InterleavedPlainAndMarkedSends) {
  MarkerWorld w;
  int fired = 0;
  std::uint64_t total = 0;
  w.stack_b.listen(9, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { total += n; });
    c.set_on_marker([&](std::shared_ptr<const void>) { ++fired; });
  });
  TcpConnection& c = w.stack_a.connect(1, 9);
  c.send(10'000);
  c.send_marked(5'000, tag(1));
  c.send(10'000);
  c.send_marked(5'000, tag(2));
  w.sim.run();
  EXPECT_EQ(total, 30'000u);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace ibwan::tcp
