#include <gtest/gtest.h>

#include <cstdio>

#include "core/calibration.hpp"
#include "core/mpi_bench.hpp"
#include "core/nfs_bench.hpp"
#include "core/report.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"
#include "core/wan_opt.hpp"

namespace ibwan::core {
namespace {

using namespace ibwan::sim::literals;

TEST(Calibration, DelayDistanceConversionMatchesTable1) {
  EXPECT_EQ(delay_for_km(1), 5'000u);      // 1 km  -> 5 us
  EXPECT_EQ(delay_for_km(2), 10'000u);     // 2 km  -> 10 us
  EXPECT_EQ(delay_for_km(20), 100'000u);   // 20 km -> 100 us
  EXPECT_EQ(delay_for_km(200), 1'000'000u);
  EXPECT_EQ(delay_for_km(2000), 10'000'000u);
  EXPECT_DOUBLE_EQ(km_for_delay(5'000), 1.0);
  EXPECT_DOUBLE_EQ(km_for_delay(10'000'000), 2000.0);
}

TEST(Testbed, DistanceKnobSetsDelay) {
  Testbed tb(1, 0);
  tb.set_distance_km(200);
  EXPECT_EQ(tb.wan_delay(), 1'000'000u);
}

TEST(WanOpt, AdaptiveThresholdGrowsWithRtt) {
  AdaptiveRendezvousThreshold policy;
  const auto lan = policy.threshold_for_rtt(10_us);
  const auto wan = policy.threshold_for_rtt(2_ms);
  EXPECT_EQ(lan, 8u * 1024);  // clamped to the LAN floor
  EXPECT_GT(wan, 64u * 1024);  // the Figure 9 regime
  EXPECT_LE(wan, 1u << 20);
}

TEST(WanOpt, ParallelStreamPolicyScalesWithDelay) {
  ParallelStreamPolicy policy;
  EXPECT_EQ(policy.streams_for(10_us, 1 << 20), 1);
  EXPECT_GT(policy.streams_for(2_ms, 256 << 10), 4);
  EXPECT_LE(policy.streams_for(100_ms, 64 << 10), 8);  // capped
}

TEST(Report, TablePrintsAndExportsCsv) {
  Table t("Test table", "x");
  t.add("a", 1, 10);
  t.add("a", 2, 20);
  t.add("b", 1, 11);
  t.print();
  const std::string path = "/tmp/ibwan_test_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "x,a,b\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(MpiBench, OsuBwMatchesVerbsShape) {
  Testbed tb(1, 0);
  const double peak = mpibench::osu_bw(
      tb, {.msg_size = 1 << 20, .window = 32, .iterations = 4});
  EXPECT_GT(peak, 900.0);
  EXPECT_LT(peak, 1000.0);
}

TEST(MpiBench, ThresholdTuningHelpsMediumMessagesAt1ms) {
  // Figure 9(a): tuned 64 KB threshold beats the 8 KB default for 8 KB
  // messages at 1 ms delay.
  Testbed tb1(1, 1000_us);
  const double original = mpibench::osu_bw(
      tb1, {.msg_size = 8192, .window = 64, .iterations = 6});
  Testbed tb2(1, 1000_us);
  const double tuned = mpibench::osu_bw(
      tb2, {.msg_size = 8192, .window = 64, .iterations = 6,
            .rendezvous_threshold = 64 * 1024});
  EXPECT_GT(tuned, original * 1.3);
}

TEST(MpiBench, MessageRateScalesWithPairs) {
  Testbed tb4(4, 10_us);
  const double r4 = mpibench::multi_pair_message_rate(
      tb4, 4, {.msg_size = 128, .window = 64, .iterations = 6});
  Testbed tb8(8, 10_us);
  const double r8 = mpibench::multi_pair_message_rate(
      tb8, 8, {.msg_size = 128, .window = 64, .iterations = 6});
  EXPECT_GT(r8, r4 * 1.5);
}

TEST(MpiBench, HierarchicalBcastWinsAtHighDelay) {
  Testbed tb1(8, 1000_us);
  const double original = mpibench::bcast_latency_us(
      tb1, {.ranks_per_cluster = 8, .msg_size = 128 << 10,
            .iterations = 3, .hierarchical = false});
  Testbed tb2(8, 1000_us);
  const double modified = mpibench::bcast_latency_us(
      tb2, {.ranks_per_cluster = 8, .msg_size = 128 << 10,
            .iterations = 3, .hierarchical = true});
  EXPECT_LT(modified, original);
}

TEST(TcpBench, ParallelStreamsSustainBandwidthAt1ms) {
  // Figure 6(b): multiple streams recover what a single stream loses.
  tcpbench::StreamConfig one{.tcp = tcp_window(512 << 10), .streams = 1,
                             .bytes_per_stream = 16 << 20};
  Testbed tb1(1, 1000_us);
  const double single = tcpbench::tcp_throughput(tb1, one);

  tcpbench::StreamConfig many = one;
  many.streams = 6;
  many.bytes_per_stream = 8 << 20;
  Testbed tb2(1, 1000_us);
  const double parallel = tcpbench::tcp_throughput(tb2, many);
  EXPECT_GT(parallel, single * 1.4);
}

TEST(NfsBench, TransportsRunEndToEnd) {
  for (auto t : {nfsbench::Transport::kRdma, nfsbench::Transport::kIpoibRc,
                 nfsbench::Transport::kIpoibUd}) {
    const auto r = nfsbench::run({.transport = t,
                                  .wan_delay = 100_us,
                                  .threads = 2,
                                  .file_bytes = 8 << 20});
    EXPECT_EQ(r.bytes, 8u << 20);
    EXPECT_GT(r.mbytes_per_sec, 10.0);
  }
}

TEST(NfsBench, LanBeatsWanForRdma) {
  const auto lan = nfsbench::run(
      {.lan = true, .threads = 4, .file_bytes = 16 << 20});
  const auto wan = nfsbench::run({.threads = 4, .file_bytes = 16 << 20});
  EXPECT_GT(lan.mbytes_per_sec, wan.mbytes_per_sec * 1.15);
}

}  // namespace
}  // namespace ibwan::core
