// Observability must be free: enabling the metrics registry (and even
// arming the flight recorder) may not change a single simulated
// outcome. These tests rerun miniature fig5- and fig9-style
// measurements with observability off and on and require bit-identical
// results — the same property the bench CSVs rely on to stay
// byte-identical with the registry compiled in.
#include <gtest/gtest.h>

#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace ibwan::core {
namespace {

struct RcRun {
  double mbytes_per_sec;
  sim::Time end_time;
};

RcRun run_fig5_point(bool observed) {
  Testbed tb(1, 1'000'000);  // 1 ms one-way: deep in the knee
  if (observed) {
    tb.sim().metrics().set_enabled(true);
    tb.sim().recorder().arm();
  }
  const auto bw = ib::perftest::run_bandwidth(
      tb.fabric(), tb.node_a(), tb.node_b(),
      ib::perftest::Transport::kRc, {.msg_size = 64 << 10, .iterations = 64});
  if (observed) tb.sim().recorder().disarm();
  return {bw.mbytes_per_sec, tb.sim().now()};
}

TEST(ObservabilityRegression, Fig5RcBandwidthIsBitIdentical) {
  const RcRun off = run_fig5_point(false);
  const RcRun on = run_fig5_point(true);
  EXPECT_EQ(off.mbytes_per_sec, on.mbytes_per_sec);  // exact, not near
  EXPECT_EQ(off.end_time, on.end_time);
}

double run_fig9_point(bool observed) {
  Testbed tb(1, 100'000);
  if (observed) {
    tb.sim().metrics().set_enabled(true);
    tb.sim().recorder().arm();
  }
  const double mbps = mpibench::osu_bw(
      tb, {.msg_size = 32 << 10,
           .window = 16,
           .iterations = 6,
           .warmup = 1,
           .rendezvous_threshold = 16 << 10});
  if (observed) tb.sim().recorder().disarm();
  return mbps;
}

TEST(ObservabilityRegression, Fig9MpiThresholdSweepIsBitIdentical) {
  EXPECT_EQ(run_fig9_point(false), run_fig9_point(true));
}

TEST(ObservabilityRegression, MetricsActuallyPopulateWhenEnabled) {
  // Sanity check that the "observed" arm above exercised real
  // instruments (a no-op registry would also be bit-identical).
  Testbed tb(1, 1'000'000);
  tb.sim().metrics().set_enabled(true);
  ib::perftest::run_bandwidth(tb.fabric(), tb.node_a(), tb.node_b(),
                              ib::perftest::Transport::kRc,
                              {.msg_size = 64 << 10, .iterations = 64});
  const sim::MetricsSnapshot snap = tb.sim().metrics().snapshot();
  ASSERT_FALSE(snap.empty());
  bool saw_rc_msgs = false, saw_wan_bytes = false;
  for (const auto& row : snap.counters) {
    if (row.path.find("/ib.rc/msgs_sent") != std::string::npos &&
        row.value > 0) {
      saw_rc_msgs = true;
    }
    if (row.path == "wan-a2b/net.link/bytes_sent" && row.value > 0) {
      saw_wan_bytes = true;
    }
  }
  EXPECT_TRUE(saw_rc_msgs);
  EXPECT_TRUE(saw_wan_bytes);
}

}  // namespace
}  // namespace ibwan::core
