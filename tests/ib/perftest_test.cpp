// Integration tests for the perftest harness — these assert the shapes
// the paper's Figures 3-5 report, at reduced scale.
#include "ib/perftest.hpp"

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::ib::perftest {
namespace {

using namespace ibwan::sim::literals;

net::FabricConfig two_nodes() { return {.nodes_a = 1, .nodes_b = 1}; }

TEST(Perftest, LongbowPairAddsAboutFiveMicroseconds) {
  // Figure 3: latency with routers vs back-to-back.
  sim::Simulator s1;
  net::Fabric routed(s1, two_nodes());
  TestConfig cfg{.msg_size = 1, .iterations = 100};
  const auto via = run_latency(routed, 0, 1, Transport::kRc, Op::kSendRecv,
                               cfg);

  sim::Simulator s2;
  net::Fabric direct(
      s2, {.nodes_a = 1, .nodes_b = 1, .back_to_back = true});
  const auto b2b = run_latency(direct, 0, 1, Transport::kRc, Op::kSendRecv,
                               cfg);

  const double added = via.avg_us - b2b.avg_us;
  EXPECT_GT(added, 3.0);
  EXPECT_LT(added, 7.0);
}

TEST(Perftest, RdmaWriteBeatsSendRecvLatency) {
  sim::Simulator s;
  net::Fabric f(s, two_nodes());
  TestConfig cfg{.msg_size = 1, .iterations = 100};
  const auto sr = run_latency(f, 0, 1, Transport::kRc, Op::kSendRecv, cfg);
  sim::Simulator s2;
  net::Fabric f2(s2, two_nodes());
  const auto wr = run_latency(f2, 0, 1, Transport::kRc, Op::kRdmaWrite, cfg);
  EXPECT_LT(wr.avg_us, sr.avg_us);
}

TEST(Perftest, UdLatencySlightlyAboveRc) {
  sim::Simulator s;
  net::Fabric f(s, two_nodes());
  TestConfig cfg{.msg_size = 1, .iterations = 100};
  const auto rc = run_latency(f, 0, 1, Transport::kRc, Op::kSendRecv, cfg);
  sim::Simulator s2;
  net::Fabric f2(s2, two_nodes());
  const auto ud = run_latency(f2, 0, 1, Transport::kUd, Op::kSendRecv, cfg);
  EXPECT_GE(ud.avg_us, rc.avg_us);
  EXPECT_LT(ud.avg_us, rc.avg_us + 2.0);
}

TEST(Perftest, WanDelayShowsUpInLatency) {
  sim::Simulator s;
  net::Fabric f(s, two_nodes());
  f.set_wan_delay(1000_us);
  TestConfig cfg{.msg_size = 1, .iterations = 20};
  const auto lat = run_latency(f, 0, 1, Transport::kRc, Op::kSendRecv, cfg);
  // One-way latency ~= 1000 us of wire plus a few us of fabric.
  EXPECT_GT(lat.avg_us, 1000.0);
  EXPECT_LT(lat.avg_us, 1020.0);
}

TEST(Perftest, UdPeakBandwidthNear967) {
  // Figure 4: UD peaks ~967 MB/s at 2 KB and is delay-invariant.
  for (sim::Duration delay : {sim::Duration{0}, 1000_us}) {
    sim::Simulator s;
    net::Fabric f(s, two_nodes());
    f.set_wan_delay(delay);
    TestConfig cfg{.msg_size = 2048, .iterations = 2000};
    const auto bw = run_bandwidth(f, 0, 1, Transport::kUd, cfg);
    EXPECT_NEAR(bw.mbytes_per_sec, 967.0, 25.0) << "delay=" << delay;
  }
}

TEST(Perftest, RcPeakBandwidthNear980AtZeroDelay) {
  sim::Simulator s;
  net::Fabric f(s, two_nodes());
  TestConfig cfg{.msg_size = 1 << 20, .iterations = 64};
  const auto bw = run_bandwidth(f, 0, 1, Transport::kRc, cfg);
  EXPECT_NEAR(bw.mbytes_per_sec, 980.0, 25.0);
}

TEST(Perftest, RcMediumMessagesDegradeWithDelayLargeRecover) {
  // Figure 5: the knee moves right as delay grows.
  auto bw_at = [](std::uint32_t size, sim::Duration delay) {
    sim::Simulator s;
    net::Fabric f(s, two_nodes());
    f.set_wan_delay(delay);
    TestConfig cfg{.msg_size = size,
                   .iterations = iters_for_bytes(32 << 20, size, 32, 2000)};
    return run_bandwidth(f, 0, 1, Transport::kRc, cfg).mbytes_per_sec;
  };
  const double med_0 = bw_at(16384, 0);
  const double med_1ms = bw_at(16384, 1000_us);
  EXPECT_LT(med_1ms, med_0 * 0.3);  // medium collapses at high delay

  const double big_1ms = bw_at(4 << 20, 1000_us);
  EXPECT_GT(big_1ms, 900.0);  // large messages recover the peak
}

TEST(Perftest, BidirectionalRoughlyDoublesUnidirectional) {
  sim::Simulator s;
  net::Fabric f(s, two_nodes());
  TestConfig cfg{.msg_size = 1 << 20, .iterations = 32};
  const auto uni = run_bandwidth(f, 0, 1, Transport::kRc, cfg);
  sim::Simulator s2;
  net::Fabric f2(s2, two_nodes());
  const auto bidir = run_bidir_bandwidth(f2, 0, 1, Transport::kRc, cfg);
  EXPECT_GT(bidir.mbytes_per_sec, uni.mbytes_per_sec * 1.8);
  EXPECT_LT(bidir.mbytes_per_sec, uni.mbytes_per_sec * 2.1);
}

TEST(Perftest, ItersForBytesClamps) {
  EXPECT_EQ(iters_for_bytes(1 << 20, 1024, 64, 16384), 1024);
  EXPECT_EQ(iters_for_bytes(100, 1024, 64, 16384), 64);
  EXPECT_EQ(iters_for_bytes(1ull << 34, 64, 64, 16384), 16384);
}

}  // namespace
}  // namespace ibwan::ib::perftest
