// Connection Manager: on-the-wire REQ/REP/RTU establishment.
#include "ib/cm.hpp"

#include <gtest/gtest.h>

#include "ib/hca.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan::ib {
namespace {

using namespace ibwan::sim::literals;

struct CmWorld {
  explicit CmWorld(double loss = 0)
      : fabric(sim, make_fabric(loss)),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        cm_a(hca_a),
        cm_b(hca_b),
        scq_a(sim), rcq_a(sim), scq_b(sim), rcq_b(sim) {}
  static net::FabricConfig make_fabric(double loss) {
    net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
    fc.longbow.loss_rate = loss;
    return fc;
  }
  sim::Simulator sim;
  net::Fabric fabric;
  Hca hca_a, hca_b;
  CmAgent cm_a, cm_b;
  Cq scq_a, rcq_a, scq_b, rcq_b;
};

TEST(Cm, EstablishesWorkingConnection) {
  CmWorld w;
  RcQp* server_qp = nullptr;
  w.cm_b.listen(42, w.scq_b, w.rcq_b,
                [&](RcQp& qp) { server_qp = &qp; });
  RcQp* client_qp = nullptr;
  [](CmWorld& cw, RcQp** out) -> sim::Task {
    *out = co_await cw.cm_a.connect(1, 42, cw.scq_a, cw.rcq_a);
  }(w, &client_qp);
  w.sim.run();
  ASSERT_NE(client_qp, nullptr);
  ASSERT_NE(server_qp, nullptr);
  EXPECT_TRUE(client_qp->connected());
  EXPECT_TRUE(server_qp->connected());

  // The connection must actually carry data.
  server_qp->post_recv(RecvWr{.wr_id = 5});
  client_qp->post_send(SendWr{.length = 4096});
  w.sim.run();
  auto cqe = w.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->byte_len, 4096u);
}

TEST(Cm, UnknownServiceIsRejected) {
  CmWorld w;
  RcQp* qp = reinterpret_cast<RcQp*>(1);
  [](CmWorld& cw, RcQp** out) -> sim::Task {
    *out = co_await cw.cm_a.connect(1, 999, cw.scq_a, cw.rcq_a);
  }(w, &qp);
  w.sim.run();
  EXPECT_EQ(qp, nullptr);
  EXPECT_EQ(w.cm_b.stats().rejects_sent, 1u);
}

TEST(Cm, HandshakeCostsOneRoundTripOverWan) {
  CmWorld w;
  w.fabric.set_wan_delay(1000_us);
  w.cm_b.listen(42, w.scq_b, w.rcq_b, [](RcQp&) {});
  sim::Time done = 0;
  [](CmWorld& cw, sim::Time* t) -> sim::Task {
    co_await cw.cm_a.connect(1, 42, cw.scq_a, cw.rcq_a);
    *t = cw.sim.now();
  }(w, &done);
  w.sim.run();
  EXPECT_GT(done, 2000_us);  // REQ there + REP back
  EXPECT_LT(done, 2200_us);
}

TEST(Cm, SurvivesMadLoss) {
  CmWorld w(0.25);  // brutal datagram loss
  w.sim.seed(11);
  int connected = 0;
  w.cm_b.listen(42, w.scq_b, w.rcq_b, [&](RcQp&) { ++connected; });
  RcQp* qp = nullptr;
  [](CmWorld& cw, RcQp** out) -> sim::Task {
    *out = co_await cw.cm_a.connect(1, 42, cw.scq_a, cw.rcq_a);
  }(w, &qp);
  w.sim.run();
  ASSERT_NE(qp, nullptr);
  EXPECT_TRUE(qp->connected());
  EXPECT_EQ(connected, 1);  // dedup: exactly one accept callback
  EXPECT_GT(w.cm_a.stats().retries, 0u);
}

TEST(Cm, ManyConcurrentConnections) {
  CmWorld w;
  int accepted = 0;
  w.cm_b.listen(42, w.scq_b, w.rcq_b, [&](RcQp&) { ++accepted; });
  int established = 0;
  for (int i = 0; i < 10; ++i) {
    [](CmWorld& cw, int* count) -> sim::Task {
      RcQp* qp = co_await cw.cm_a.connect(1, 42, cw.scq_a, cw.rcq_a);
      if (qp != nullptr) ++*count;
    }(w, &established);
  }
  w.sim.run();
  EXPECT_EQ(established, 10);
  EXPECT_EQ(accepted, 10);
  EXPECT_EQ(w.cm_a.stats().connections, 10u);
}

TEST(Cm, BothDirectionsSimultaneously) {
  CmWorld w;
  w.cm_a.listen(7, w.scq_a, w.rcq_a, [](RcQp&) {});
  w.cm_b.listen(7, w.scq_b, w.rcq_b, [](RcQp&) {});
  int ok = 0;
  [](CmWorld& cw, int* count) -> sim::Task {
    if (co_await cw.cm_a.connect(1, 7, cw.scq_a, cw.rcq_a)) ++*count;
  }(w, &ok);
  [](CmWorld& cw, int* count) -> sim::Task {
    if (co_await cw.cm_b.connect(0, 7, cw.scq_b, cw.rcq_b)) ++*count;
  }(w, &ok);
  w.sim.run();
  EXPECT_EQ(ok, 2);
}

}  // namespace
}  // namespace ibwan::ib
