// RDMA atomics (fetch-add / compare-swap) and shared receive queues.
#include <gtest/gtest.h>

#include <vector>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "tests/ib/ib_test_util.hpp"

namespace ibwan::ib {
namespace {

using ibwan::ib::testing::TwoNodeFabric;
using namespace ibwan::sim::literals;

TEST(Atomics, FetchAddReturnsOldAndAdds) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  f.hca_b.memory_word(0x100) = 41;
  std::vector<std::uint64_t> olds;
  f.scq_a.set_callback([&](const Cqe& e) {
    ASSERT_EQ(e.type, CqeType::kAtomicComplete);
    olds.push_back(e.atomic_old);
  });
  qa->post_send(SendWr{.wr_id = 1,
                       .opcode = Opcode::kFetchAdd,
                       .remote_addr = 0x100,
                       .atomic_operand = 1});
  qa->post_send(SendWr{.wr_id = 2,
                       .opcode = Opcode::kFetchAdd,
                       .remote_addr = 0x100,
                       .atomic_operand = 10});
  f.sim.run();
  ASSERT_EQ(olds.size(), 2u);
  EXPECT_EQ(olds[0], 41u);
  EXPECT_EQ(olds[1], 42u);
  EXPECT_EQ(f.hca_b.memory_word(0x100), 52u);
}

TEST(Atomics, CompareSwapOnlySwapsOnMatch) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  f.hca_b.memory_word(0x200) = 7;
  std::vector<std::uint64_t> olds;
  f.scq_a.set_callback([&](const Cqe& e) { olds.push_back(e.atomic_old); });
  // Matching compare: swaps.
  qa->post_send(SendWr{.wr_id = 1,
                       .opcode = Opcode::kCompareSwap,
                       .remote_addr = 0x200,
                       .atomic_operand = 99,
                       .atomic_compare = 7});
  // Stale compare: fails, returns current value.
  qa->post_send(SendWr{.wr_id = 2,
                       .opcode = Opcode::kCompareSwap,
                       .remote_addr = 0x200,
                       .atomic_operand = 123,
                       .atomic_compare = 7});
  f.sim.run();
  ASSERT_EQ(olds.size(), 2u);
  EXPECT_EQ(olds[0], 7u);
  EXPECT_EQ(olds[1], 99u);
  EXPECT_EQ(f.hca_b.memory_word(0x200), 99u);
}

TEST(Atomics, ConcurrentAddersNeverLoseUpdates) {
  // Two requesters hammer one counter; the final value must be exact —
  // the distributed-lock use case from the group's data-center work.
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  const int n = 50;
  int done = 0;
  f.scq_a.set_callback([&](const Cqe&) { ++done; });
  f.scq_b.set_callback([&](const Cqe&) { ++done; });
  for (int i = 0; i < n; ++i) {
    qa->post_send(SendWr{.wr_id = static_cast<std::uint64_t>(i),
                         .opcode = Opcode::kFetchAdd,
                         .remote_addr = 0x300,
                         .atomic_operand = 1});
    qb->post_send(SendWr{.wr_id = static_cast<std::uint64_t>(1000 + i),
                         .opcode = Opcode::kFetchAdd,
                         .remote_addr = 0x300,
                         .atomic_operand = 1});
  }
  f.sim.run();
  EXPECT_EQ(done, 2 * n);
  // qa targets hca_b's word, qb targets hca_a's word.
  EXPECT_EQ(f.hca_b.memory_word(0x300), static_cast<std::uint64_t>(n));
  EXPECT_EQ(f.hca_a.memory_word(0x300), static_cast<std::uint64_t>(n));
}

TEST(Atomics, SurviveWanLoss) {
  net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
  fc.longbow.loss_rate = 0.05;
  HcaConfig hca;
  hca.rto = 2_ms;
  TwoNodeFabric f(hca, fc);
  f.sim.seed(31);
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  int done = 0;
  f.scq_a.set_callback([&](const Cqe&) { ++done; });
  for (int i = 0; i < 30; ++i) {
    qa->post_send(SendWr{.wr_id = static_cast<std::uint64_t>(i),
                         .opcode = Opcode::kFetchAdd,
                         .remote_addr = 0x400,
                         .atomic_operand = 1});
  }
  f.sim.run();
  EXPECT_EQ(done, 30);
  EXPECT_EQ(f.hca_b.memory_word(0x400), 30u);  // exactly once each
}

TEST(Atomics, LatencyIsOneRoundTrip) {
  TwoNodeFabric f;
  f.fabric.set_wan_delay(500_us);
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  sim::Time done = 0;
  f.scq_a.set_callback([&](const Cqe&) { done = f.sim.now(); });
  qa->post_send(SendWr{.opcode = Opcode::kFetchAdd, .remote_addr = 0});
  f.sim.run();
  EXPECT_GT(done, 1000_us);
  EXPECT_LT(done, 1100_us);
}

TEST(Srq, SharedPoolServesMultipleQps) {
  TwoNodeFabric f;
  // Two QP pairs into node B, both B-side QPs on one SRQ.
  RcQp& qa1 = f.hca_a.create_rc_qp(f.scq_a, f.rcq_a);
  RcQp& qa2 = f.hca_a.create_rc_qp(f.scq_a, f.rcq_a);
  RcQp& qb1 = f.hca_b.create_rc_qp(f.scq_b, f.rcq_b);
  RcQp& qb2 = f.hca_b.create_rc_qp(f.scq_b, f.rcq_b);
  qa1.connect(f.hca_b.lid(), qb1.qpn());
  qb1.connect(f.hca_a.lid(), qa1.qpn());
  qa2.connect(f.hca_b.lid(), qb2.qpn());
  qb2.connect(f.hca_a.lid(), qa2.qpn());
  Srq srq;
  qb1.set_srq(&srq);
  qb2.set_srq(&srq);
  for (int i = 0; i < 8; ++i) srq.post_recv(RecvWr{.wr_id = 500 + static_cast<std::uint64_t>(i)});

  int got = 0;
  f.rcq_b.set_callback([&](const Cqe& e) {
    EXPECT_GE(e.wr_id, 500u);
    ++got;
  });
  for (int i = 0; i < 4; ++i) {
    qa1.post_send(SendWr{.length = 128});
    qa2.post_send(SendWr{.length = 256});
  }
  f.sim.run();
  EXPECT_EQ(got, 8);
  EXPECT_EQ(srq.depth(), 0u);
}

TEST(Srq, RefillUnblocksStashedMessages) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  Srq srq;
  qb->set_srq(&srq);
  qa->post_send(SendWr{.length = 64});
  f.sim.run();
  EXPECT_EQ(f.rcq_b.poll(), std::nullopt);  // no buffers yet
  srq.post_recv(RecvWr{.wr_id = 9});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 9u);
}

TEST(Srq, QpOwnQueueHasPriority) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  Srq srq;
  qb->set_srq(&srq);
  srq.post_recv(RecvWr{.wr_id = 111});
  qb->post_recv(RecvWr{.wr_id = 222});
  qa->post_send(SendWr{.length = 64});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 222u);  // own queue consumed first
  EXPECT_EQ(srq.depth(), 1u);
}

}  // namespace
}  // namespace ibwan::ib
