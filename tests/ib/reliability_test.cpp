// Failure injection: RC must deliver every byte exactly once, in order,
// across a lossy WAN; UD loss must be visible to the application.
#include <gtest/gtest.h>

#include <vector>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "tests/ib/ib_test_util.hpp"

namespace ibwan::ib {
namespace {

using ibwan::ib::testing::TwoNodeFabric;
using namespace ibwan::sim::literals;

TwoNodeFabric lossy_fabric(double loss, HcaConfig hca = {}) {
  net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
  fc.longbow.loss_rate = loss;
  return TwoNodeFabric(hca, fc);
}

TEST(Reliability, RcRecoversSingleMessageFromLoss) {
  HcaConfig hca;
  hca.rto = 2_ms;
  auto f = lossy_fabric(0.02, hca);
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{});
  qa->post_send(SendWr{.length = 1 << 20});  // 512 packets, ~10 will drop
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->byte_len, 1u << 20);
  EXPECT_GT(qa->stats().pkts_retransmitted, 0u);
}

TEST(Reliability, RcDeliversAllMessagesInOrderUnderLoss) {
  HcaConfig hca;
  hca.rto = 2_ms;
  auto f = lossy_fabric(0.05, hca);
  f.sim.seed(1234);
  auto [qa, qb] = f.rc_pair();
  const int n = 200;
  std::vector<std::uint64_t> sizes;
  f.rcq_b.set_callback([&](const Cqe& e) { sizes.push_back(e.byte_len); });
  for (int i = 0; i < n; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < n; ++i) {
    qa->post_send(SendWr{.length = static_cast<std::uint64_t>(1 + i * 37)});
  }
  f.sim.run();
  ASSERT_EQ(sizes.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(sizes[i], static_cast<std::uint64_t>(1 + i * 37));
  }
  EXPECT_GT(qb->stats().naks_sent + qa->stats().rto_fires, 0u);
}

TEST(Reliability, RcSenderCompletionsSurviveAckLoss) {
  // Loss hits acks too; duplicates must re-ack and all sends complete.
  HcaConfig hca;
  hca.rto = 1_ms;
  auto f = lossy_fabric(0.05, hca);
  f.sim.seed(99);
  auto [qa, qb] = f.rc_pair();
  const int n = 100;
  int send_done = 0;
  f.scq_a.set_callback([&](const Cqe&) { ++send_done; });
  for (int i = 0; i < n; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < n; ++i) qa->post_send(SendWr{.length = 3000});
  f.sim.run();
  EXPECT_EQ(send_done, n);
  EXPECT_EQ(qb->stats().msgs_received, static_cast<std::uint64_t>(n));
}

TEST(Reliability, RcRdmaReadSurvivesRequestLoss) {
  HcaConfig hca;
  hca.rto = 1_ms;
  auto f = lossy_fabric(0.10, hca);
  f.sim.seed(7);
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  int done = 0;
  f.scq_a.set_callback([&](const Cqe&) { ++done; });
  for (int i = 0; i < 10; ++i) {
    qa->post_send(SendWr{.wr_id = static_cast<std::uint64_t>(i),
                         .opcode = Opcode::kRdmaRead,
                         .length = 20000});
  }
  f.sim.run();
  EXPECT_EQ(done, 10);
}

TEST(Reliability, RetransmissionPreservesExactlyOnceDelivery) {
  // Count receiver messages: duplicates would surface as extra CQEs.
  HcaConfig hca;
  hca.rto = 500_us;  // aggressive timer to provoke spurious retransmits
  auto f = lossy_fabric(0.03, hca);
  f.fabric.set_wan_delay(100_us);
  auto [qa, qb] = f.rc_pair();
  const int n = 50;
  int recv_done = 0;
  f.rcq_b.set_callback([&](const Cqe&) { ++recv_done; });
  for (int i = 0; i < n; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < n; ++i) qa->post_send(SendWr{.length = 10000});
  f.sim.run();
  EXPECT_EQ(recv_done, n);
  EXPECT_EQ(qb->stats().msgs_received, static_cast<std::uint64_t>(n));
}

TEST(Reliability, UdLossIsSilentButCounted) {
  auto f = lossy_fabric(0.2);
  f.sim.seed(5);
  auto [qa, qb] = f.ud_pair();
  const int n = 500;
  for (int i = 0; i < n; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < n; ++i) {
    qa->post_send(SendWr{.length = 1024}, UdDest{f.hca_b.lid(), qb->qpn()});
  }
  f.sim.run();
  EXPECT_EQ(qa->stats().datagrams_sent, static_cast<std::uint64_t>(n));
  EXPECT_LT(qb->stats().datagrams_received, static_cast<std::uint64_t>(n));
  EXPECT_GT(qb->stats().datagrams_received, static_cast<std::uint64_t>(n) / 2);
}

TEST(Reliability, WanBufferOverflowTriggersRetransmitNotDataLoss) {
  net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
  fc.longbow.buffer_bytes = 16 * 1024;  // tiny WAN buffer
  HcaConfig hca;
  hca.rto = 2_ms;
  TwoNodeFabric f(hca, fc);
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{});
  qa->post_send(SendWr{.length = 256 * 1024});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->byte_len, 256u * 1024);
}

}  // namespace
}  // namespace ibwan::ib
