#include <gtest/gtest.h>

#include <vector>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "tests/ib/ib_test_util.hpp"

namespace ibwan::ib {
namespace {

using ibwan::ib::testing::TwoNodeFabric;
using namespace ibwan::sim::literals;

TEST(RcQp, SendDeliversRecvCompletion) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{.wr_id = 77, .max_length = 4096});
  qa->post_send(SendWr{.wr_id = 5, .length = 1024, .imm = 9});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->type, CqeType::kRecvComplete);
  EXPECT_EQ(cqe->wr_id, 77u);
  EXPECT_EQ(cqe->byte_len, 1024u);
  EXPECT_EQ(cqe->imm, 9u);
}

TEST(RcQp, SendCompletionArrivesAfterAck) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  f.fabric.set_wan_delay(100_us);
  qb->post_recv(RecvWr{.max_length = 4096});
  sim::Time send_done = 0;
  f.scq_a.set_callback([&](const Cqe& e) {
    EXPECT_EQ(e.type, CqeType::kSendComplete);
    send_done = f.sim.now();
  });
  qa->post_send(SendWr{.wr_id = 1, .length = 8});
  f.sim.run();
  // Completion requires the ack: at least a full RTT (200us) elapsed.
  EXPECT_GT(send_done, 200_us);
  EXPECT_LT(send_done, 300_us);
}

TEST(RcQp, LargeMessageIsSegmentedAndReassembled) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  const std::uint64_t len = 1 << 20;  // 512 packets at 2 KB MTU
  qb->post_recv(RecvWr{.wr_id = 1, .max_length = len});
  qa->post_send(SendWr{.wr_id = 2, .length = len});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->byte_len, len);
  EXPECT_EQ(f.rcq_b.poll(), std::nullopt);  // exactly one completion
  EXPECT_EQ(qb->stats().msgs_received, 1u);
  EXPECT_EQ(qb->stats().bytes_received, len);
}

TEST(RcQp, ZeroLengthMessageCompletes) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{.wr_id = 3});
  qa->post_send(SendWr{.wr_id = 4, .length = 0});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->byte_len, 0u);
  ASSERT_TRUE(f.scq_a.poll().has_value());
}

TEST(RcQp, MessagesCompleteInPostingOrder) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  std::vector<std::uint64_t> recv_order;
  f.rcq_b.set_callback([&](const Cqe& e) { recv_order.push_back(e.byte_len); });
  std::vector<std::uint64_t> send_order;
  f.scq_a.set_callback([&](const Cqe& e) { send_order.push_back(e.wr_id); });
  for (int i = 0; i < 40; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < 40; ++i) {
    qa->post_send(SendWr{.wr_id = static_cast<std::uint64_t>(i),
                         .length = static_cast<std::uint64_t>(100 + i)});
  }
  f.sim.run();
  ASSERT_EQ(recv_order.size(), 40u);
  ASSERT_EQ(send_order.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(recv_order[i], static_cast<std::uint64_t>(100 + i));
    EXPECT_EQ(send_order[i], static_cast<std::uint64_t>(i));
  }
}

TEST(RcQp, SendArrivingBeforeRecvIsHeldNotLost) {
  // Our RC model buffers early sends rather than RNR-NAKing (DESIGN.md).
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  qa->post_send(SendWr{.wr_id = 1, .length = 256});
  f.sim.run();
  EXPECT_EQ(f.rcq_b.poll(), std::nullopt);
  qb->post_recv(RecvWr{.wr_id = 9});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 9u);
  EXPECT_EQ(cqe->byte_len, 256u);
}

TEST(RcQp, InflightWindowBoundsThroughputAtHighDelay) {
  // The paper's key RC observation: with W messages of size S in flight,
  // throughput <= W*S/RTT; medium messages cannot fill a long pipe.
  HcaConfig cfg;
  cfg.rc_max_inflight_msgs = 4;
  TwoNodeFabric f(cfg);
  f.fabric.set_wan_delay(1000_us);
  auto [qa, qb] = f.rc_pair();
  const int iters = 40;
  const std::uint64_t size = 8192;
  for (int i = 0; i < iters; ++i) qb->post_recv(RecvWr{});
  int completed = 0;
  sim::Time t_end = 0;
  f.scq_a.set_callback([&](const Cqe&) {
    if (++completed == iters) t_end = f.sim.now();
  });
  for (int i = 0; i < iters; ++i) {
    qa->post_send(SendWr{.length = size});
  }
  f.sim.run();
  const double secs = sim::to_seconds(t_end);
  const double mbps = static_cast<double>(iters) * size / secs / 1e6;
  // Window bound: 4 msgs * 8 KB / ~2 ms RTT ~= 16 MB/s.
  EXPECT_LT(mbps, 18.0);
  EXPECT_GT(mbps, 10.0);
}

TEST(RcQp, LargerWindowRaisesWanThroughput) {
  auto measure = [](int window) {
    HcaConfig cfg;
    cfg.rc_max_inflight_msgs = window;
    TwoNodeFabric f(cfg);
    f.fabric.set_wan_delay(1000_us);
    auto [qa, qb] = f.rc_pair();
    const int iters = 64;
    for (int i = 0; i < iters; ++i) qb->post_recv(RecvWr{});
    int completed = 0;
    sim::Time t_end = 0;
    f.scq_a.set_callback([&](const Cqe&) {
      if (++completed == iters) t_end = f.sim.now();
    });
    for (int i = 0; i < iters; ++i) qa->post_send(SendWr{.length = 16384});
    f.sim.run();
    return static_cast<double>(iters) * 16384 / sim::to_seconds(t_end);
  };
  EXPECT_GT(measure(16), 3.0 * measure(2));
}

TEST(RcQp, StatsCountTraffic) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  for (int i = 0; i < 3; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < 3; ++i) qa->post_send(SendWr{.length = 5000});
  f.sim.run();
  EXPECT_EQ(qa->stats().msgs_sent, 3u);
  EXPECT_EQ(qa->stats().bytes_sent, 15000u);
  EXPECT_EQ(qb->stats().msgs_received, 3u);
  EXPECT_EQ(qb->stats().bytes_received, 15000u);
  EXPECT_EQ(qa->stats().pkts_retransmitted, 0u);
  EXPECT_GT(qb->stats().acks_sent, 0u);
}

TEST(RcQp, AckIntervalKeepsLargeTransferAcked) {
  HcaConfig cfg;
  cfg.ack_interval_pkts = 8;
  TwoNodeFabric f(cfg);
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{});
  qa->post_send(SendWr{.length = 64 * 1024});  // 32 packets
  f.sim.run();
  // 32 packets / 8 per ack = 4 interval acks (the last packet ack
  // coincides with an interval boundary).
  EXPECT_GE(qb->stats().acks_sent, 4u);
  ASSERT_TRUE(f.scq_a.poll().has_value());
}

TEST(RcQp, TrafficAcrossWanUsesLongbows) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{});
  qa->post_send(SendWr{.length = 10000});
  f.sim.run();
  EXPECT_GT(f.fabric.longbows()->wan_stats_a_to_b().packets_sent, 4u);
  // Acks flow back.
  EXPECT_GT(f.fabric.longbows()->wan_stats_b_to_a().packets_sent, 0u);
}

TEST(Hca, UnknownQpnCountsUnroutable) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  qa->connect(f.hca_b.lid(), 999);  // bogus remote QPN
  qa->post_send(SendWr{.length = 64});
  f.sim.run_for(1_ms);
  EXPECT_GT(f.hca_b.stats().pkts_unroutable, 0u);
}

TEST(Hca, MrRegistrationsDoNotOverlap) {
  TwoNodeFabric f;
  Mr a = f.hca_a.register_mr(10000);
  Mr b = f.hca_a.register_mr(4096);
  EXPECT_GE(b.addr, a.addr + a.length);
  EXPECT_NE(a.rkey, b.rkey);
}

}  // namespace
}  // namespace ibwan::ib
