// Shared fixtures for verbs-layer tests: a two-node cluster-of-clusters
// fabric (one host per side of the Longbow pair) with HCAs and CQs.
#pragma once

#include <memory>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::ib::testing {

struct TwoNodeFabric {
  explicit TwoNodeFabric(HcaConfig hca_cfg = {},
                         net::FabricConfig fab_cfg = {.nodes_a = 1,
                                                      .nodes_b = 1})
      : fabric(sim, fab_cfg),
        hca_a(fabric.node(fabric.node_id(net::Cluster::kA, 0)), hca_cfg),
        hca_b(fabric.node(fabric.node_id(net::Cluster::kB, 0)), hca_cfg),
        scq_a(sim), rcq_a(sim), scq_b(sim), rcq_b(sim) {}

  /// Creates a connected RC QP pair (a_side, b_side).
  std::pair<RcQp*, RcQp*> rc_pair() {
    RcQp& qa = hca_a.create_rc_qp(scq_a, rcq_a);
    RcQp& qb = hca_b.create_rc_qp(scq_b, rcq_b);
    qa.connect(hca_b.lid(), qb.qpn());
    qb.connect(hca_a.lid(), qa.qpn());
    return {&qa, &qb};
  }

  std::pair<UdQp*, UdQp*> ud_pair() {
    UdQp& qa = hca_a.create_ud_qp(scq_a, rcq_a);
    UdQp& qb = hca_b.create_ud_qp(scq_b, rcq_b);
    return {&qa, &qb};
  }

  sim::Simulator sim;
  net::Fabric fabric;
  Hca hca_a;
  Hca hca_b;
  Cq scq_a, rcq_a, scq_b, rcq_b;
};

}  // namespace ibwan::ib::testing
