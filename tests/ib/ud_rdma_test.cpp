#include <gtest/gtest.h>

#include <vector>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "tests/ib/ib_test_util.hpp"

namespace ibwan::ib {
namespace {

using ibwan::ib::testing::TwoNodeFabric;
using namespace ibwan::sim::literals;

// ---------------------------------------------------------------------------
// UD
// ---------------------------------------------------------------------------

TEST(UdQp, DatagramDeliveredWithSourceInfo) {
  TwoNodeFabric f;
  auto [qa, qb] = f.ud_pair();
  qb->post_recv(RecvWr{.wr_id = 42});
  qa->post_send(SendWr{.length = 512, .imm = 3},
                UdDest{f.hca_b.lid(), qb->qpn()});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 42u);
  EXPECT_EQ(cqe->byte_len, 512u);
  EXPECT_EQ(cqe->src_lid, f.hca_a.lid());
  EXPECT_EQ(cqe->src_qpn, qa->qpn());
}

TEST(UdQp, NoRecvPostedDropsDatagram) {
  TwoNodeFabric f;
  auto [qa, qb] = f.ud_pair();
  qa->post_send(SendWr{.length = 100}, UdDest{f.hca_b.lid(), qb->qpn()});
  f.sim.run();
  EXPECT_EQ(qb->stats().datagrams_dropped_no_recv, 1u);
  EXPECT_EQ(f.rcq_b.poll(), std::nullopt);
}

TEST(UdQp, SendCompletionDoesNotWaitForDelivery) {
  TwoNodeFabric f;
  f.fabric.set_wan_delay(10000_us);
  auto [qa, qb] = f.ud_pair();
  qb->post_recv(RecvWr{});
  sim::Time send_done = 0;
  f.scq_a.set_callback([&](const Cqe&) { send_done = f.sim.now(); });
  qa->post_send(SendWr{.length = 2048}, UdDest{f.hca_b.lid(), qb->qpn()});
  f.sim.run();
  // Completion fires at local wire time, far before the 10 ms delivery.
  EXPECT_LT(send_done, 100_us);
}

TEST(UdQp, ThroughputIndependentOfWanDelay) {
  // Figure 4's defining property.
  auto measure = [](sim::Duration delay) {
    TwoNodeFabric f;
    f.fabric.set_wan_delay(delay);
    auto [qa, qb] = f.ud_pair();
    const int iters = 500;
    for (int i = 0; i < iters; ++i) qb->post_recv(RecvWr{});
    int done = 0;
    sim::Time t_end = 0;
    f.scq_a.set_callback([&](const Cqe&) {
      if (++done == iters) t_end = f.sim.now();
    });
    for (int i = 0; i < iters; ++i) {
      qa->post_send(SendWr{.length = 2048},
                    UdDest{f.hca_b.lid(), qb->qpn()});
    }
    f.sim.run();
    return static_cast<double>(iters) * 2048 / sim::to_seconds(t_end) / 1e6;
  };
  const double at0 = measure(0);
  const double at10ms = measure(10000_us);
  EXPECT_NEAR(at0, at10ms, at0 * 0.01);
  EXPECT_GT(at0, 900.0);  // near the 967 MB/s UD wire limit
}

// ---------------------------------------------------------------------------
// RDMA
// ---------------------------------------------------------------------------

TEST(Rdma, WriteInvokesListenerWithoutConsumingRecv) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{.wr_id = 1});
  std::uint64_t got_addr = 0, got_len = 0;
  qb->set_rdma_write_listener(
      [&](std::uint64_t addr, std::uint64_t len, bool imm) {
        got_addr = addr;
        got_len = len;
        EXPECT_FALSE(imm);
      });
  qa->post_send(SendWr{
      .opcode = Opcode::kRdmaWrite, .length = 8192, .remote_addr = 0xdead0});
  f.sim.run();
  EXPECT_EQ(got_addr, 0xdead0u);
  EXPECT_EQ(got_len, 8192u);
  EXPECT_EQ(f.rcq_b.poll(), std::nullopt);  // recv WQE untouched
  ASSERT_TRUE(f.scq_a.poll().has_value());  // writer got its completion
}

TEST(Rdma, WriteWithImmConsumesRecvAndSignals) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{.wr_id = 11});
  qa->post_send(SendWr{.opcode = Opcode::kRdmaWriteWithImm,
                       .length = 4096,
                       .remote_addr = 0x100,
                       .imm = 1234});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->type, CqeType::kRecvRdmaImm);
  EXPECT_EQ(cqe->wr_id, 11u);
  EXPECT_EQ(cqe->imm, 1234u);
  EXPECT_EQ(cqe->byte_len, 4096u);
}

TEST(Rdma, ReadCompletesWithRequestedBytes) {
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  qa->post_send(SendWr{.wr_id = 21,
                       .opcode = Opcode::kRdmaRead,
                       .length = 100000,
                       .remote_addr = 0x8000});
  f.sim.run();
  auto cqe = f.scq_a.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->type, CqeType::kRdmaReadComplete);
  EXPECT_EQ(cqe->wr_id, 21u);
  EXPECT_EQ(cqe->byte_len, 100000u);
}

TEST(Rdma, ReadLatencyIncludesFullRoundTrip) {
  TwoNodeFabric f;
  f.fabric.set_wan_delay(500_us);
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  sim::Time done = 0;
  f.scq_a.set_callback([&](const Cqe&) { done = f.sim.now(); });
  qa->post_send(
      SendWr{.opcode = Opcode::kRdmaRead, .length = 8, .remote_addr = 0});
  f.sim.run();
  EXPECT_GT(done, 1000_us);  // request there + data back
  EXPECT_LT(done, 1100_us);
}

TEST(Rdma, ManyReadsRespectOutstandingLimitButAllComplete) {
  HcaConfig cfg;
  cfg.rc_max_outstanding_reads = 2;
  TwoNodeFabric f(cfg);
  auto [qa, qb] = f.rc_pair();
  (void)qb;
  int done = 0;
  f.scq_a.set_callback([&](const Cqe& e) {
    EXPECT_EQ(e.type, CqeType::kRdmaReadComplete);
    ++done;
  });
  for (int i = 0; i < 20; ++i) {
    qa->post_send(SendWr{.wr_id = static_cast<std::uint64_t>(i),
                         .opcode = Opcode::kRdmaRead,
                         .length = 4096,
                         .remote_addr = static_cast<std::uint64_t>(i) * 4096});
  }
  f.sim.run();
  EXPECT_EQ(done, 20);
}

TEST(Rdma, WritesAndSendsInterleaveInOrder) {
  // A FIN-style send posted after an RDMA write must arrive after the
  // written data (the ordering MPI rendezvous depends on).
  TwoNodeFabric f;
  auto [qa, qb] = f.rc_pair();
  bool write_seen = false;
  bool fin_after_write = false;
  qb->set_rdma_write_listener(
      [&](std::uint64_t, std::uint64_t, bool) { write_seen = true; });
  f.rcq_b.set_callback([&](const Cqe& e) {
    if (e.type == CqeType::kRecvComplete) fin_after_write = write_seen;
  });
  qb->post_recv(RecvWr{});
  qa->post_send(SendWr{
      .opcode = Opcode::kRdmaWrite, .length = 1 << 20, .remote_addr = 0});
  qa->post_send(SendWr{.length = 32});  // FIN
  f.sim.run();
  EXPECT_TRUE(write_seen);
  EXPECT_TRUE(fin_after_write);
}

}  // namespace
}  // namespace ibwan::ib
