// Property sweeps over verbs-layer configuration: path MTU, ack
// coalescing interval, and transport window — conservation must hold at
// every setting, and derived quantities (packet counts) must be exact.
#include <gtest/gtest.h>

#include <tuple>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "tests/ib/ib_test_util.hpp"

namespace ibwan::ib {
namespace {

using ibwan::ib::testing::TwoNodeFabric;

class MtuSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MtuSweepTest, ConservationAtAnyPathMtu) {
  HcaConfig cfg;
  cfg.mtu = GetParam();
  TwoNodeFabric f(cfg);
  auto [qa, qb] = f.rc_pair();
  const std::uint64_t len = 1'000'003;  // prime: exercises the tail
  qb->post_recv(RecvWr{});
  qa->post_send(SendWr{.length = len});
  f.sim.run();
  auto cqe = f.rcq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->byte_len, len);
  // Exact packet count: ceil(len / mtu) data packets reach the HCA.
  const std::uint64_t expect_pkts = (len + cfg.mtu - 1) / cfg.mtu;
  EXPECT_EQ(f.hca_b.stats().pkts_rx, expect_pkts);
}

TEST_P(MtuSweepTest, SmallerMtuMeansMoreHeaderOverhead) {
  const std::uint32_t mtu = GetParam();
  HcaConfig cfg;
  cfg.mtu = mtu;
  TwoNodeFabric f(cfg);
  auto [qa, qb] = f.rc_pair();
  const int iters = 32;
  for (int i = 0; i < iters; ++i) qb->post_recv(RecvWr{});
  int done = 0;
  sim::Time t_end = 0;
  f.scq_a.set_callback([&](const Cqe&) {
    if (++done == iters) t_end = f.sim.now();
  });
  for (int i = 0; i < iters; ++i) qa->post_send(SendWr{.length = 1 << 20});
  f.sim.run();
  const double rate =
      static_cast<double>(iters) * (1 << 20) / sim::to_seconds(t_end);
  // Effective peak = wire * mtu / (mtu + header).
  const double efficiency =
      static_cast<double>(mtu) / (mtu + kRcHeaderBytes);
  EXPECT_NEAR(rate / 1e9, efficiency, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuSweepTest,
                         ::testing::Values(256u, 1024u, 2048u, 4096u));

class AckIntervalTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AckIntervalTest, DeliveryUnaffectedByCoalescing) {
  HcaConfig cfg;
  cfg.ack_interval_pkts = GetParam();
  TwoNodeFabric f(cfg);
  auto [qa, qb] = f.rc_pair();
  int done = 0;
  f.scq_a.set_callback([&](const Cqe&) { ++done; });
  for (int i = 0; i < 10; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < 10; ++i) qa->post_send(SendWr{.length = 300'000});
  f.sim.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(qb->stats().msgs_received, 10u);
}

TEST_P(AckIntervalTest, FewerAcksWithLargerInterval) {
  HcaConfig cfg;
  cfg.ack_interval_pkts = GetParam();
  TwoNodeFabric f(cfg);
  auto [qa, qb] = f.rc_pair();
  qb->post_recv(RecvWr{});
  qa->post_send(SendWr{.length = 1 << 20});  // 512 packets
  f.sim.run();
  // At most one ack per interval plus the final one.
  const std::uint64_t bound = 512 / GetParam() + 2;
  EXPECT_LE(qb->stats().acks_sent, bound);
}

INSTANTIATE_TEST_SUITE_P(Intervals, AckIntervalTest,
                         ::testing::Values(4u, 16u, 64u, 256u));

class WindowDelayProductTest
    : public ::testing::TestWithParam<std::tuple<int, sim::Duration>> {};

TEST_P(WindowDelayProductTest, ThroughputScalesWithWindowUntilWire) {
  const auto [window, delay] = GetParam();
  HcaConfig cfg;
  cfg.rc_max_inflight_msgs = window;
  TwoNodeFabric f(cfg);
  f.fabric.set_wan_delay(delay);
  auto [qa, qb] = f.rc_pair();
  const int iters = 48;
  const std::uint64_t size = 64 << 10;
  for (int i = 0; i < iters; ++i) qb->post_recv(RecvWr{});
  int done = 0;
  sim::Time t_end = 0;
  f.scq_a.set_callback([&](const Cqe&) {
    if (++done == iters) t_end = f.sim.now();
  });
  for (int i = 0; i < iters; ++i) qa->post_send(SendWr{.length = size});
  f.sim.run();
  const double rate =
      static_cast<double>(iters) * size / sim::to_seconds(t_end);
  const double wire = 1e9 * 2048.0 / 2078.0;
  const double rtt = 2.0 * static_cast<double>(delay) / 1e9 + 2e-5;
  const double bound = window * static_cast<double>(size) / rtt;
  EXPECT_LT(rate, std::min(wire, bound) * 1.05);
  // And it achieves a solid fraction of the bound (pipeline is filled).
  EXPECT_GT(rate, std::min(wire, bound) * 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowDelayProductTest,
    ::testing::Combine(::testing::Values(4, 16, 64),
                       ::testing::Values<sim::Duration>(100'000,
                                                        1'000'000)));

}  // namespace
}  // namespace ibwan::ib
