// PDES differential oracle (DESIGN.md §13): small versions of the
// paper's heavy scenarios (fig5 RC bandwidth, fig12 NAS, ext_kv)
// executed on the sequential engine (IBWAN_THREADS=1, the exact path
// the committed CSVs were generated with) and site-parallel under 2
// and 4 worker threads. Simulated results, total event counts, merged
// end times, and the metrics JSON export must be *bitwise* identical —
// site-parallel execution is a pure wall-clock optimization, so any
// difference is a determinism bug, not a tolerance question.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/nas.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "ib/perftest.hpp"
#include "kv/kv.hpp"
#include "mpi/mpi.hpp"
#include "rpc/rpc.hpp"
#include "sim/metrics.hpp"

namespace ibwan {
namespace {

struct Outcome {
  double result = 0;           // scenario's headline number
  std::uint64_t events = 0;    // events across all sites
  sim::Time end = 0;           // merged simulated end time
  int sites = 0;               // partition actually constructed
  std::string metrics_json;    // full metrics export, bytes
};

std::string json_of(const sim::MetricsSnapshot& snap) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  snap.write_json(f);
  std::fclose(f);
  std::string s(buf, len);
  std::free(buf);
  return s;
}

Outcome fig5_small() {
  core::Testbed tb(core::TestbedOptions{.wan_delay = 1'000'000,
                                        .metrics = true,
                                        .par_sites = 2});
  Outcome o;
  o.result = ib::perftest::run_bandwidth(
                 tb.fabric(), tb.node_a(), tb.node_b(),
                 ib::perftest::Transport::kRc,
                 {.msg_size = 64u << 10, .iterations = 64})
                 .mbytes_per_sec;
  o.events = tb.engine().events_executed();
  o.end = tb.now();
  o.sites = tb.engine().sites();
  o.metrics_json = json_of(tb.metrics_snapshot());
  return o;
}

Outcome fig12_small() {
  core::Testbed tb(core::TestbedOptions{.nodes_a = 4,
                                        .nodes_b = 4,
                                        .wan_delay = 1'000'000,
                                        .metrics = true,
                                        .par_sites = 2});
  mpi::Job job(tb.fabric(), mpi::Job::split_placement(tb.fabric(), 4));
  Outcome o;
  o.result = apps::run_nas(
      job, apps::make_ft({.cls = apps::NasClass::kS, .iterations = 1}));
  o.events = tb.engine().events_executed();
  o.end = tb.now();
  o.sites = tb.engine().sites();
  o.metrics_json = json_of(tb.metrics_snapshot());
  return o;
}

Outcome ext_kv_small() {
  core::Testbed tb(core::TestbedOptions{.wan_delay = 1'000'000,
                                        .metrics = true,
                                        .par_sites = 2});
  ib::Hca server_hca(tb.fabric().node(tb.node_a()), {});
  ib::Hca client_hca(tb.fabric().node(tb.node_b()), {});
  rpc::RdmaRpcServer rpc_server(server_hca);
  rpc::RdmaRpcClient rpc_client(client_hca, rpc_server);
  kv::KvServer server(tb.sim_a());
  rpc_server.set_handler(server.handler());
  for (std::uint64_t k = 0; k < 64; ++k) server.preload(k, 4096);
  kv::KvClient client(rpc_client);
  Outcome o;
  o.result = kv::run_kv_workload(tb.sim_for(tb.node_b()), client,
                                 {.clients = 4,
                                  .ops_per_client = 50,
                                  .get_fraction = 0.9,
                                  .value_bytes = 4096,
                                  .key_space = 64},
                                 &tb.engine())
                 .kops_per_sec;
  o.events = tb.engine().events_executed();
  o.end = tb.now();
  o.sites = tb.engine().sites();
  o.metrics_json = json_of(tb.metrics_snapshot());
  return o;
}

// Runs `scenario` once under the sequential oracle and once per
// parallel thread budget, asserting every observable is bitwise equal.
void expect_differential_identical(Outcome (*scenario)(), const char* name) {
  ::setenv("IBWAN_THREADS", "1", 1);  // oracle: collapses to one site
  const Outcome seq = scenario();
  EXPECT_EQ(seq.sites, 1) << name << ": oracle did not collapse";
  for (const char* threads : {"2", "4"}) {
    ::setenv("IBWAN_THREADS", threads, 1);
    const Outcome par = scenario();
    SCOPED_TRACE(std::string(name) + " IBWAN_THREADS=" + threads);
    EXPECT_EQ(par.sites, 2) << "scenario silently fell back to sequential";
    EXPECT_EQ(seq.result, par.result);  // bitwise, not near
    EXPECT_EQ(seq.events, par.events);
    EXPECT_EQ(seq.end, par.end);
    EXPECT_EQ(seq.metrics_json, par.metrics_json);
  }
  ::unsetenv("IBWAN_THREADS");
}

TEST(PdesDifferential, Fig5RcBandwidthByteIdentical) {
  expect_differential_identical(&fig5_small, "fig5_small");
}

TEST(PdesDifferential, Fig12NasFtByteIdentical) {
  expect_differential_identical(&fig12_small, "fig12_small");
}

TEST(PdesDifferential, ExtKvWorkloadByteIdentical) {
  expect_differential_identical(&ext_kv_small, "ext_kv_small");
}

}  // namespace
}  // namespace ibwan
