// Property sweeps over TCP/IPoIB: byte conservation, the window/RTT
// throughput bound, and monotonicity in the window size.
#include <gtest/gtest.h>

#include <tuple>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::tcp {
namespace {

struct World {
  World(ipoib::IpoibConfig dev, TcpConfig cfg, sim::Duration delay,
        double loss = 0)
      : fabric(sim, make_fabric(loss)),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        dev_a(hca_a, dev),
        dev_b(hca_b, dev),
        stack_a(dev_a, cfg),
        stack_b(dev_b, cfg) {
    fabric.set_wan_delay(delay);
    ipoib::IpoibDevice::link(dev_a, dev_b);
  }
  static net::FabricConfig make_fabric(double loss) {
    net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
    fc.longbow.loss_rate = loss;
    return fc;
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a, hca_b;
  ipoib::IpoibDevice dev_a, dev_b;
  TcpStack stack_a, stack_b;
};

struct TransferResult {
  std::uint64_t delivered = 0;
  std::uint64_t acked = 0;
  double seconds = 0;
};

TransferResult transfer(World& w, std::uint64_t bytes) {
  TransferResult result;
  w.stack_b.listen(7, [&](TcpConnection& c) {
    c.set_on_delivered([&](std::uint64_t n) { result.delivered += n; });
  });
  TcpConnection& c = w.stack_a.connect(1, 7);
  c.send(bytes);
  w.sim.run();
  result.acked = c.bytes_acked();
  result.seconds = sim::to_seconds(w.sim.now());
  return result;
}

class TcpGridTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t /*window*/, sim::Duration /*delay*/>> {};

TEST_P(TcpGridTest, EveryByteDeliveredAndAcked) {
  const auto [window, delay] = GetParam();
  TcpConfig cfg;
  cfg.window_bytes = window;
  World w({}, cfg, delay);
  const std::uint64_t bytes = 2 << 20;
  const auto r = transfer(w, bytes);
  EXPECT_EQ(r.delivered, bytes);
  EXPECT_EQ(r.acked, bytes);
}

TEST_P(TcpGridTest, ThroughputBelowWindowOverRtt) {
  const auto [window, delay] = GetParam();
  if (delay == 0) GTEST_SKIP() << "bound is vacuous at zero delay";
  TcpConfig cfg;
  cfg.window_bytes = window;
  World w({}, cfg, delay);
  const std::uint64_t bytes = 2 << 20;
  const auto r = transfer(w, bytes);
  const double rtt = 2.0 * static_cast<double>(delay) / 1e9;
  const double bound = static_cast<double>(window) / rtt;
  EXPECT_LT(static_cast<double>(bytes) / r.seconds, bound * 1.05);
}

INSTANTIATE_TEST_SUITE_P(
    WindowDelayGrid, TcpGridTest,
    ::testing::Combine(
        ::testing::Values<std::uint32_t>(64 << 10, 256 << 10, 1 << 20),
        ::testing::Values<sim::Duration>(0, 100'000, 1'000'000,
                                         10'000'000)));

class TcpWindowMonotoneTest
    : public ::testing::TestWithParam<sim::Duration> {};

TEST_P(TcpWindowMonotoneTest, BiggerWindowNeverSlower) {
  const sim::Duration delay = GetParam();
  auto rate = [&](std::uint32_t window) {
    TcpConfig cfg;
    cfg.window_bytes = window;
    World w({}, cfg, delay);
    const std::uint64_t bytes = 4 << 20;
    const auto r = transfer(w, bytes);
    return static_cast<double>(bytes) / r.seconds;
  };
  // Near-monotone: second-order burst/delayed-ack dynamics can cost a
  // few percent, as on real stacks; a larger window must never lose big.
  const double small = rate(64 << 10);
  const double medium = rate(256 << 10);
  const double large = rate(1 << 20);
  EXPECT_GE(medium, small * 0.95);
  EXPECT_GE(large, medium * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Delays, TcpWindowMonotoneTest,
                         ::testing::Values<sim::Duration>(0, 100'000,
                                                          1'000'000));

class TcpLossTest : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossTest, ConservationUnderLoss) {
  World w({}, {}, /*delay=*/50'000, GetParam());
  w.sim.seed(99);
  const std::uint64_t bytes = 3 << 20;
  const auto r = transfer(w, bytes);
  EXPECT_EQ(r.delivered, bytes);
  EXPECT_EQ(r.acked, bytes);
}

INSTANTIATE_TEST_SUITE_P(LossGrid, TcpLossTest,
                         ::testing::Values(0.0005, 0.005, 0.02));

class TcpMtuTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TcpMtuTest, ConnectedModeConservesAtAnyMtu) {
  ipoib::IpoibConfig dev;
  dev.mode = ipoib::Mode::kConnected;
  dev.mtu = GetParam();
  World w(dev, {}, 100'000);
  const std::uint64_t bytes = 2 << 20;
  const auto r = transfer(w, bytes);
  EXPECT_EQ(r.delivered, bytes);
}

INSTANTIATE_TEST_SUITE_P(MtuGrid, TcpMtuTest,
                         ::testing::Values(2044u, 9000u, 16u << 10,
                                           ipoib::kConnectedIpMtu));

}  // namespace
}  // namespace ibwan::tcp
