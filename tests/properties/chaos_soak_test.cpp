// Chaos soak: end-to-end workloads under a faulted WAN.
//
// Invariants, per ISSUE/ROADMAP hardening goals:
//   - every byte a WAN link accepts is delivered or attributed to a
//     drop bucket (no silent loss);
//   - workloads either complete or fail with an explicit error
//     (flushed CQEs / ok=false replies) — they never hang;
//   - the simulator drains to idle after the workload: no orphaned
//     timers or stuck retransmission loops.
//
// Runs two fixed seeds plus an optional extra seed from
// IBWAN_CHAOS_SEED (echoed, for reproducing CI shake-out failures).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <vector>

#include "core/nfs_bench.hpp"
#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "net/wan.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

namespace ibwan {
namespace {

using namespace ibwan::sim::literals;

std::vector<std::uint64_t> soak_seeds() {
  std::vector<std::uint64_t> seeds{42, 1337};
  if (const char* env = std::getenv("IBWAN_CHAOS_SEED")) {
    const std::uint64_t s = std::strtoull(env, nullptr, 10);
    std::printf("[chaos] extra seed from IBWAN_CHAOS_SEED: %llu\n",
                static_cast<unsigned long long>(s));
    seeds.push_back(s);
  }
  return seeds;
}

void expect_conserved(const net::Link::Stats& s, const char* which) {
  EXPECT_EQ(s.bytes_sent, s.bytes_delivered + s.bytes_dropped) << which;
  EXPECT_EQ(s.packets_sent, s.packets_delivered + s.packets_dropped_loss +
                                s.packets_dropped_fault +
                                s.packets_dropped_down)
      << which;
}

net::FaultPlanConfig chaos_plan() {
  net::FaultPlanConfig cfg;
  cfg.ge = {.p_good_to_bad = 0.002,
            .p_bad_to_good = 0.1,
            .loss_good = 0.0001,
            .loss_bad = 0.2};
  cfg.jitter_max = 5'000;  // 5 us
  cfg.flaps.push_back({.down_at = 20'000'000, .down_for = 5'000'000});
  cfg.brownouts.push_back(
      {.at = 50'000'000, .duration = 20'000'000, .buffer_bytes = 64 << 10});
  return cfg;
}

// ---------------------------------------------------------------------------
// TCP survives bursty loss, a mid-transfer flap, jitter and a brownout
// ---------------------------------------------------------------------------

TEST(ChaosSoak, TcpTransferSurvivesFaultedWan) {
  for (std::uint64_t seed : soak_seeds()) {
    sim::Simulator sim;
    sim.seed(seed);
    net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1});
    ib::Hca hca_a(fabric.node(0), {});
    ib::Hca hca_b(fabric.node(1), {});
    ipoib::IpoibDevice dev_a(hca_a, {}), dev_b(hca_b, {});
    tcp::TcpConfig tcfg;
    tcfg.sack = (seed % 2) == 0;  // soak both recovery paths
    tcp::TcpStack stack_a(dev_a, tcfg), stack_b(dev_b, tcfg);
    fabric.set_wan_delay(100_us);
    ipoib::IpoibDevice::link(dev_a, dev_b);
    fabric.longbows()->apply_faults(chaos_plan());

    const std::uint64_t bytes = 16ull << 20;
    std::uint64_t delivered = 0;
    stack_b.listen(7, [&](tcp::TcpConnection& c) {
      c.set_on_delivered([&](std::uint64_t n) { delivered += n; });
    });
    tcp::TcpConnection& c = stack_a.connect(1, 7);
    c.send(bytes);

    // A generous deadline: events past it mean a stuck recovery loop.
    const bool more = sim.run_until(600ull * 1'000'000'000);
    EXPECT_FALSE(more) << "seed " << seed << ": simulator did not drain";
    EXPECT_EQ(delivered, bytes) << "seed " << seed;
    expect_conserved(fabric.longbows()->wan_link_a_to_b().stats(), "a2b");
    expect_conserved(fabric.longbows()->wan_link_b_to_a().stats(), "b2a");
    EXPECT_GT(fabric.longbows()->wan_link_a_to_b().stats().flaps, 0u);
  }
}

// ---------------------------------------------------------------------------
// RC verbs: bursty loss is recovered; a severed WAN flushes, not hangs
// ---------------------------------------------------------------------------

TEST(ChaosSoak, RcTransferSurvivesBurstyLoss) {
  for (std::uint64_t seed : soak_seeds()) {
    sim::Simulator sim;
    sim.seed(seed);
    net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1});
    ib::Hca hca_a(fabric.node(0), {});
    ib::Hca hca_b(fabric.node(1), {});
    ib::Cq scq_a(sim), rcq_a(sim), scq_b(sim), rcq_b(sim);
    fabric.set_wan_delay(100_us);
    net::FaultPlanConfig cfg;
    cfg.ge = {.p_good_to_bad = 0.001,
              .p_bad_to_good = 0.2,
              .loss_good = 0.0,
              .loss_bad = 0.1};
    fabric.longbows()->apply_faults(cfg);

    ib::RcQp& qa = hca_a.create_rc_qp(scq_a, rcq_a);
    ib::RcQp& qb = hca_b.create_rc_qp(scq_b, rcq_b);
    qa.connect(hca_b.lid(), qb.qpn());
    qb.connect(hca_a.lid(), qa.qpn());

    const int msgs = 64;
    int completions = 0, failures = 0;
    scq_a.set_callback([&](const ib::Cqe& e) {
      e.success ? ++completions : ++failures;
    });
    for (int i = 0; i < msgs; ++i) qb.post_recv(ib::RecvWr{});
    for (int i = 0; i < msgs; ++i) {
      qa.post_send(ib::SendWr{.wr_id = static_cast<std::uint64_t>(i),
                              .length = 256 << 10});
    }
    const bool more = sim.run_until(600ull * 1'000'000'000);
    EXPECT_FALSE(more) << "seed " << seed;
    // Loss bursts end (p_bad_to_good = 0.2): everything is recoverable,
    // so nothing may be flushed and every message must land.
    EXPECT_EQ(completions, msgs) << "seed " << seed;
    EXPECT_EQ(failures, 0) << "seed " << seed;
    EXPECT_EQ(qb.stats().msgs_received, static_cast<std::uint64_t>(msgs));
    expect_conserved(fabric.longbows()->wan_link_a_to_b().stats(), "a2b");
  }
}

TEST(ChaosSoak, SeveredWanFlushesEveryWqeInsteadOfHanging) {
  sim::Simulator sim;
  sim.seed(42);
  net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1});
  ib::Hca hca_a(fabric.node(0), {});
  ib::Hca hca_b(fabric.node(1), {});
  ib::Cq scq_a(sim), rcq_a(sim), scq_b(sim), rcq_b(sim);

  ib::RcQp& qa = hca_a.create_rc_qp(scq_a, rcq_a);
  ib::RcQp& qb = hca_b.create_rc_qp(scq_b, rcq_b);
  qa.connect(hca_b.lid(), qb.qpn());
  qb.connect(hca_a.lid(), qa.qpn());

  // Cut both WAN directions permanently mid-transfer.
  sim.schedule_at(1'000'000, [&] {
    fabric.longbows()->wan_link_a_to_b().set_down(true);
    fabric.longbows()->wan_link_b_to_a().set_down(true);
  });

  const int msgs = 32;
  int ok = 0, flushed = 0;
  scq_a.set_callback([&](const ib::Cqe& e) {
    e.success ? ++ok : ++flushed;
  });
  for (int i = 0; i < msgs; ++i) qb.post_recv(ib::RecvWr{});
  for (int i = 0; i < msgs; ++i) {
    qa.post_send(ib::SendWr{.wr_id = static_cast<std::uint64_t>(i),
                            .length = 1 << 20});
  }
  // Retry exhaustion takes rc_retry_count RTO fires (~1.6 s simulated);
  // the queue must then drain — a pre-fix sender retransmitted forever.
  const bool more = sim.run_until(3600ull * 1'000'000'000);
  EXPECT_FALSE(more) << "simulator did not drain after QP error";
  EXPECT_TRUE(qa.in_error());
  EXPECT_EQ(ok + flushed, msgs) << "every posted WQE must complete";
  EXPECT_GT(flushed, 0);
  EXPECT_GT(qa.stats().retries_exhausted, 0u);
  EXPECT_EQ(qa.stats().flushed_wqes, static_cast<std::uint64_t>(flushed));

  // Posting on an errored QP completes immediately with success=false.
  qa.post_send(ib::SendWr{.wr_id = 999, .length = 64});
  sim.run();
  EXPECT_EQ(ok + flushed, msgs + 1);
}

// ---------------------------------------------------------------------------
// NFS over the global fault plan (exercises Testbed/bench wiring)
// ---------------------------------------------------------------------------

TEST(ChaosSoak, NfsIozoneCompletesUnderGlobalFaultPlan) {
  net::set_global_fault_plan(chaos_plan());
  core::nfsbench::NfsBenchConfig cfg;
  cfg.transport = core::nfsbench::Transport::kIpoibRc;
  cfg.wan_delay = 100_us;
  cfg.threads = 2;
  cfg.file_bytes = 8ull << 20;
  cfg.record_bytes = 256 << 10;
  const nfs::IozoneResult r = core::nfsbench::run(cfg);
  net::clear_global_fault_plan();
  EXPECT_EQ(r.bytes, cfg.file_bytes);
  EXPECT_GT(r.mbytes_per_sec, 0.0);
}

// ---------------------------------------------------------------------------
// Chaos determinism: the same seed reproduces the same faulted run
// ---------------------------------------------------------------------------

TEST(ChaosSoak, SameSeedReproducesFaultedTcpRun) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim.seed(seed);
    net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1});
    ib::Hca hca_a(fabric.node(0), {});
    ib::Hca hca_b(fabric.node(1), {});
    ipoib::IpoibDevice dev_a(hca_a, {}), dev_b(hca_b, {});
    tcp::TcpStack stack_a(dev_a, {}), stack_b(dev_b, {});
    fabric.set_wan_delay(100_us);
    ipoib::IpoibDevice::link(dev_a, dev_b);
    fabric.longbows()->apply_faults(chaos_plan());
    std::uint64_t delivered = 0;
    stack_b.listen(7, [&](tcp::TcpConnection& c) {
      c.set_on_delivered([&](std::uint64_t n) { delivered += n; });
    });
    tcp::TcpConnection& c = stack_a.connect(1, 7);
    c.send(4 << 20);
    sim.run();
    return std::pair<std::uint64_t, sim::Time>{
        fabric.longbows()->wan_link_a_to_b().stats().packets_dropped_fault,
        sim.now()};
  };
  for (std::uint64_t seed : soak_seeds()) {
    EXPECT_EQ(run(seed), run(seed)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ibwan
