// Property sweeps over the MPI layer: every collective must complete
// and conserve bytes for any rank count (including non-powers-of-two)
// and any delay, and the protocol switchover must be seamless around
// the threshold.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::mpi {
namespace {

struct MpiWorld {
  explicit MpiWorld(int per_cluster, sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = per_cluster, .nodes_b = per_cluster}) {
    fabric.set_wan_delay(wan_delay);
    job = std::make_unique<Job>(
        fabric, Job::split_placement(fabric, per_cluster));
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<Job> job;
};

class CollectiveCompletionTest
    : public ::testing::TestWithParam<std::tuple<int, sim::Duration>> {};

TEST_P(CollectiveCompletionTest, EveryCollectiveCompletesEverywhere) {
  const auto [per_cluster, delay] = GetParam();
  MpiWorld w(per_cluster, delay);
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.barrier();
    co_await r.bcast(0, 10'000);
    co_await r.bcast_hierarchical(r.size() - 1, 10'000);
    co_await r.reduce(0, 5'000);
    co_await r.allreduce(3'000);
    co_await r.alltoall(2'000);
    co_await r.allgather(1'000);
    co_await r.gather(0, 1'000);
    co_await r.scatter(0, 1'000);
    co_await r.reduce_scatter(1'000);
    ++done;
  });
  EXPECT_EQ(done, 2 * per_cluster);
}

INSTANTIATE_TEST_SUITE_P(
    RankDelayGrid, CollectiveCompletionTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values<sim::Duration>(0, 1'000'000)));

class Pt2ptSizeBoundaryTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pt2ptSizeBoundaryTest, BytesConservedAroundThreshold) {
  // Sizes straddling the eager/rendezvous switch, +-1 byte.
  const std::uint64_t size = GetParam();
  MpiWorld w(1);
  std::uint64_t got = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, size);
    } else {
      got = co_await r.recv(0);
    }
  });
  EXPECT_EQ(got, size);
}

INSTANTIATE_TEST_SUITE_P(Boundary, Pt2ptSizeBoundaryTest,
                         ::testing::Values(8191u, 8192u, 8193u, 1u, 0u + 2,
                                           (1u << 20) - 1, 1u << 20));

class AlltoallConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallConservationTest, TotalBytesMatchExactly) {
  const int per_cluster = GetParam();
  MpiWorld w(per_cluster);
  const int p = 2 * per_cluster;
  std::uint64_t total_sent = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.alltoall(7'777);
    total_sent += r.stats().bytes_sent;
  });
  EXPECT_EQ(total_sent, static_cast<std::uint64_t>(p) * (p - 1) * 7'777);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlltoallConservationTest,
                         ::testing::Values(1, 2, 3, 6));

class BcastEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BcastEquivalenceTest, AllVariantsDeliverToEveryRank) {
  const std::uint64_t bytes = GetParam();
  for (int variant = 0; variant < 3; ++variant) {
    MpiWorld w(4);
    std::vector<int> got(8, 0);
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      switch (variant) {
        case 0: co_await r.bcast_binomial(2, bytes); break;
        case 1: co_await r.bcast_scatter_allgather(2, bytes); break;
        case 2: co_await r.bcast_hierarchical(2, bytes); break;
      }
      got[r.rank()] = 1;
    });
    for (int i = 0; i < 8; ++i) EXPECT_EQ(got[i], 1) << variant;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BcastEquivalenceTest,
                         ::testing::Values(64u, 8192u, 262144u));

}  // namespace
}  // namespace ibwan::mpi
