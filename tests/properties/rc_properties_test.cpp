// Property sweeps over the RC transport: conservation (every byte
// delivered exactly once, in order) and the analytic throughput bound
// (rate <= window * size / RTT, capped by the wire) across the
// delay x size grid, with and without loss.
#include <gtest/gtest.h>

#include <tuple>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "tests/ib/ib_test_util.hpp"

namespace ibwan::ib {
namespace {

using ibwan::ib::testing::TwoNodeFabric;

// --------------------------------------------------------------------------
// Delay x message-size sweep.
// --------------------------------------------------------------------------

class RcGridTest : public ::testing::TestWithParam<
                       std::tuple<sim::Duration, std::uint64_t>> {};

TEST_P(RcGridTest, AllBytesDeliveredInOrder) {
  const auto [delay, size] = GetParam();
  TwoNodeFabric f;
  f.fabric.set_wan_delay(delay);
  auto [qa, qb] = f.rc_pair();
  const int n = 10;
  int order_errors = 0;
  std::uint64_t expected_imm = 0;
  f.rcq_b.set_callback([&](const Cqe& e) {
    if (e.imm != expected_imm++) ++order_errors;
  });
  for (int i = 0; i < n; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < n; ++i) {
    qa->post_send(SendWr{.length = size,
                         .imm = static_cast<std::uint32_t>(i)});
  }
  f.sim.run();
  EXPECT_EQ(order_errors, 0);
  EXPECT_EQ(qb->stats().msgs_received, static_cast<std::uint64_t>(n));
  EXPECT_EQ(qb->stats().bytes_received, size * n);
  EXPECT_EQ(qa->stats().pkts_retransmitted, 0u);  // lossless fabric
}

TEST_P(RcGridTest, ThroughputRespectsWindowBound) {
  const auto [delay, size] = GetParam();
  HcaConfig cfg;
  TwoNodeFabric f(cfg);
  f.fabric.set_wan_delay(delay);
  auto [qa, qb] = f.rc_pair();
  const int n = 32;
  for (int i = 0; i < n; ++i) qb->post_recv(RecvWr{});
  int done = 0;
  sim::Time t_end = 0;
  f.scq_a.set_callback([&](const Cqe&) {
    if (++done == n) t_end = f.sim.now();
  });
  for (int i = 0; i < n; ++i) qa->post_send(SendWr{.length = size});
  f.sim.run();
  const double rate =
      static_cast<double>(size) * n / sim::to_seconds(t_end);  // B/s

  // Wire ceiling: SDR payload rate net of per-packet headers.
  const double wire = 1e9 * 2048.0 / (2048.0 + kRcHeaderBytes);
  EXPECT_LT(rate, wire * 1.02);

  // Window bound: W messages per round trip (generous fabric overhead
  // allowance; bound is only meaningful when delay dominates).
  if (delay > 0) {
    const double rtt = 2.0 * static_cast<double>(delay) / 1e9;
    const double window_bound =
        cfg.rc_max_inflight_msgs * static_cast<double>(size) / rtt;
    EXPECT_LT(rate, window_bound * 1.10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DelaySizeGrid, RcGridTest,
    ::testing::Combine(
        ::testing::Values<sim::Duration>(0, 10'000, 100'000, 1'000'000),
        ::testing::Values<std::uint64_t>(512, 8192, 65536, 1 << 20)));

// --------------------------------------------------------------------------
// Loss-rate sweep: reliability must hold at any injected loss level.
// --------------------------------------------------------------------------

class RcLossTest : public ::testing::TestWithParam<double> {};

TEST_P(RcLossTest, ExactlyOnceDeliveryUnderLoss) {
  const double loss = GetParam();
  net::FabricConfig fc{.nodes_a = 1, .nodes_b = 1};
  fc.longbow.loss_rate = loss;
  HcaConfig hca;
  hca.rto = 2 * sim::kMillisecond;
  TwoNodeFabric f(hca, fc);
  f.sim.seed(static_cast<std::uint64_t>(loss * 1e6) + 17);
  auto [qa, qb] = f.rc_pair();
  const int n = 60;
  int recv_count = 0;
  f.rcq_b.set_callback([&](const Cqe&) { ++recv_count; });
  int send_count = 0;
  f.scq_a.set_callback([&](const Cqe&) { ++send_count; });
  for (int i = 0; i < n; ++i) qb->post_recv(RecvWr{});
  for (int i = 0; i < n; ++i) {
    qa->post_send(SendWr{.length = 5000 + 100 * static_cast<std::uint64_t>(i)});
  }
  f.sim.run();
  EXPECT_EQ(recv_count, n) << "loss=" << loss;
  EXPECT_EQ(send_count, n) << "loss=" << loss;
  EXPECT_EQ(qb->stats().msgs_received, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(LossGrid, RcLossTest,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.15));

// --------------------------------------------------------------------------
// UD delay invariance across sizes.
// --------------------------------------------------------------------------

class UdInvarianceTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UdInvarianceTest, BandwidthIndependentOfDelay) {
  const std::uint32_t size = GetParam();
  auto measure = [&](sim::Duration delay) {
    TwoNodeFabric f;
    f.fabric.set_wan_delay(delay);
    auto [qa, qb] = f.ud_pair();
    const int iters = 300;
    for (int i = 0; i < iters; ++i) qb->post_recv(RecvWr{});
    sim::Time first = 0, last = 0;
    int got = 0;
    f.rcq_b.set_callback([&](const Cqe&) {
      if (got == 0) first = f.sim.now();
      if (++got == iters) last = f.sim.now();
    });
    for (int i = 0; i < iters; ++i) {
      qa->post_send(SendWr{.length = size},
                    UdDest{f.hca_b.lid(), qb->qpn()});
    }
    f.sim.run();
    return static_cast<double>(iters - 1) * size /
           sim::to_seconds(last - first);
  };
  const double r0 = measure(0);
  const double r10ms = measure(10'000'000);
  EXPECT_NEAR(r0, r10ms, r0 * 0.02) << size;
}

INSTANTIATE_TEST_SUITE_P(SizeGrid, UdInvarianceTest,
                         ::testing::Values(64u, 512u, 1024u, 2048u));

}  // namespace
}  // namespace ibwan::ib
