#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ibwan::sim {
namespace {

TEST(Metrics, ScopedNamesFormHierarchicalPaths) {
  MetricsRegistry m;
  m.counter("node3/ib.rc", "msgs_sent", MetricUnit::kMessages);
  m.gauge("wan-a2b/net.link", "queued_bytes", MetricUnit::kBytes);
  m.histogram("node3/ib.rc", "ack_ns", MetricUnit::kNanoseconds);

  const auto inv = m.inventory();
  ASSERT_EQ(inv.size(), 3u);
  // Inventory is sorted by full path.
  EXPECT_EQ(inv[0].path, "node3/ib.rc/ack_ns");
  EXPECT_EQ(inv[0].kind, MetricKind::kHistogram);
  EXPECT_EQ(inv[1].path, "node3/ib.rc/msgs_sent");
  EXPECT_EQ(inv[1].unit, MetricUnit::kMessages);
  EXPECT_EQ(inv[2].path, "wan-a2b/net.link/queued_bytes");
}

TEST(Metrics, ReRegistrationReturnsTheSameInstrument) {
  MetricsRegistry m;
  m.set_enabled(true);
  Counter& a = m.counter("node0/tcp", "segs_sent", MetricUnit::kPackets);
  Counter& b = m.counter("node0/tcp", "segs_sent", MetricUnit::kPackets);
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(m.inventory().size(), 1u);
}

TEST(Metrics, DisabledModeHasZeroSideEffects) {
  MetricsRegistry m;
  ASSERT_FALSE(m.enabled());  // disabled is the default
  Counter& c = m.counter("n/l", "c");
  Gauge& g = m.gauge("n/l", "g");
  Histogram& h = m.histogram("n/l", "h", MetricUnit::kNanoseconds);

  c.add(7);
  g.set(42);
  g.add(5);
  h.observe(1000);

  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  EXPECT_EQ(h.count(), 0u);
  // A snapshot of a disabled registry is empty, even though the
  // instruments are registered (the schema dump relies on that).
  EXPECT_TRUE(m.snapshot().empty());
  EXPECT_EQ(m.inventory().size(), 3u);
}

TEST(Metrics, SnapshotIsAnIsolatedValueCopy) {
  MetricsRegistry m;
  m.set_enabled(true);
  Counter& c = m.counter("n/l", "c");
  Gauge& g = m.gauge("n/l", "g");
  Histogram& h = m.histogram("n/l", "h");
  c.add(10);
  g.set(4);
  g.set(2);  // high-watermark stays at 4
  h.observe(8);

  const MetricsSnapshot snap = m.snapshot();
  // Mutations after the snapshot must not leak into it.
  c.add(100);
  g.set(99);
  h.observe(1 << 20);

  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].path, "n/l/c");
  EXPECT_EQ(snap.counters[0].value, 10u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 2);
  EXPECT_EQ(snap.gauges[0].max, 4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].mean, 8.0);
}

TEST(Metrics, MergeSumsCountersMaxesGaugesAddsBins) {
  MetricsRegistry m1, m2;
  m1.set_enabled(true);
  m2.set_enabled(true);
  m1.counter("a/l", "c").add(3);
  m2.counter("a/l", "c").add(4);
  m2.counter("b/l", "only_in_second").add(1);
  m1.gauge("a/l", "g").set(10);
  m2.gauge("a/l", "g").set(7);
  m1.histogram("a/l", "h").observe(100);
  m2.histogram("a/l", "h").observe(300);

  MetricsSnapshot snap = m1.snapshot();
  snap.merge(m2.snapshot());

  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].path, "a/l/c");
  EXPECT_EQ(snap.counters[0].value, 7u);
  EXPECT_EQ(snap.counters[1].path, "b/l/only_in_second");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].max, 10);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].mean, 200.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].min, 100.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 300.0);
}

TEST(Metrics, KindOrUnitNamesMatchTheDocumentedSchema) {
  EXPECT_STREQ(metric_kind_name(MetricKind::kCounter), "counter");
  EXPECT_STREQ(metric_kind_name(MetricKind::kGauge), "gauge");
  EXPECT_STREQ(metric_kind_name(MetricKind::kHistogram), "histogram");
  EXPECT_STREQ(metric_unit_name(MetricUnit::kCount), "count");
  EXPECT_STREQ(metric_unit_name(MetricUnit::kPackets), "packets");
  EXPECT_STREQ(metric_unit_name(MetricUnit::kBytes), "bytes");
  EXPECT_STREQ(metric_unit_name(MetricUnit::kMessages), "messages");
  EXPECT_STREQ(metric_unit_name(MetricUnit::kNanoseconds), "ns");
}

std::string slurp(std::FILE* f) {
  std::string out;
  std::rewind(f);
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  return out;
}

TEST(Metrics, JsonExportCarriesSchemaIdAndRows) {
  MetricsRegistry m;
  m.set_enabled(true);
  m.counter("node0/ib.rc", "msgs_sent", MetricUnit::kMessages).add(5);
  m.histogram("node0/ib.rc", "ack_ns", MetricUnit::kNanoseconds)
      .observe(4096);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  m.snapshot().write_json(f);
  const std::string json = slurp(f);
  std::fclose(f);

  EXPECT_NE(json.find("\"schema\": \"ibwan.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"node0/ib.rc/msgs_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"messages\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, CsvExportHasTheDocumentedHeader) {
  MetricsRegistry m;
  m.set_enabled(true);
  m.counter("n/l", "c").add(1);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  m.snapshot().write_csv(f);
  const std::string csv = slurp(f);
  std::fclose(f);
  EXPECT_EQ(csv.rfind("name,kind,unit,value,max,count,min,mean,p50,p99\n", 0),
            0u);
  EXPECT_NE(csv.find("n/l/c,counter,count,1"), std::string::npos);
}

TEST(Metrics, AggregatorAbsorbsAcrossRegistries) {
  auto& agg = MetricsAggregator::global();
  agg.reset();
  EXPECT_FALSE(agg.active());
  agg.activate();
  ASSERT_TRUE(agg.active());

  for (int run = 0; run < 2; ++run) {
    MetricsRegistry m;
    m.set_enabled(true);
    m.counter("n/l", "c").add(static_cast<std::uint64_t>(run) + 1);
    agg.absorb(m.snapshot());
  }
  const MetricsSnapshot merged = agg.merged();
  ASSERT_EQ(merged.counters.size(), 1u);
  EXPECT_EQ(merged.counters[0].value, 3u);

  agg.reset();
  EXPECT_FALSE(agg.active());
  EXPECT_TRUE(agg.merged().empty());
}

}  // namespace
}  // namespace ibwan::sim
