// SiteEngine (conservative site-parallel PDES, DESIGN.md §13) unit
// tests: horizon semantics, merge ordering, thread-count invariance,
// and termination.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace ibwan::sim {
namespace {

// The torn-horizon case: an event scheduled exactly at the window
// horizon H must NOT fire inside that window, because a cross-site
// arrival with the same timestamp may still need to merge ahead of it.
// Here site 0 fires at t=10 and pushes an arrival for t=15; site 1 has
// a local event at exactly t=15 (== H for lookahead 5). Both must fire,
// in (time, per-site insertion seq) order, across two windows.
TEST(SiteEngine, TornHorizonEventAtHorizonWaitsForMerge) {
  SiteEngine eng(/*sites=*/2, /*threads=*/1);
  eng.set_lookahead(5);
  SiteEngine::Channel& ch = eng.make_channel(0, 1);

  std::vector<std::string> log;
  eng.site(1).schedule_at(15, [&log] { log.push_back("local@15"); });
  eng.site(0).schedule_at(10, [&ch, &log] {
    ch.push(15, [&log] { log.push_back("arrival@15"); });
  });
  eng.run();

  // The local event was inserted first, so at the shared timestamp it
  // keeps its lower per-site seq and fires first — same rule the
  // sequential Simulator applies.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "local@15");
  EXPECT_EQ(log[1], "arrival@15");
  EXPECT_EQ(eng.now(), 15);
  EXPECT_GE(eng.stats().windows, 2u);
  EXPECT_EQ(eng.stats().tie_arrivals, 1u);
  EXPECT_EQ(eng.stats().channel_msgs, 1u);
}

// Same-timestamp arrivals from different channels merge in channel
// creation order, and within one channel in push order.
TEST(SiteEngine, MergeOrderIsArrivalThenChannelThenSeq) {
  SiteEngine eng(/*sites=*/3, /*threads=*/1);
  eng.set_lookahead(5);
  SiteEngine::Channel& ch_a = eng.make_channel(0, 1);  // id 0
  SiteEngine::Channel& ch_b = eng.make_channel(2, 1);  // id 1

  std::vector<std::string> log;
  // Push in an order deliberately different from the required merge
  // order (B first, then A twice).
  ch_b.push(20, [&log] { log.push_back("B0"); });
  ch_a.push(20, [&log] { log.push_back("A0"); });
  ch_a.push(20, [&log] { log.push_back("A1"); });
  eng.run();

  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "A0");
  EXPECT_EQ(log[1], "A1");
  EXPECT_EQ(log[2], "B0");
  EXPECT_EQ(eng.stats().channel_msgs, 3u);
  EXPECT_EQ(eng.now(), 20);
}

// Cross-site ping-pong driver used by the invariance test. Callbacks
// for site i only ever touch site i's log, so the parallel run is
// race-free by construction (the channel API is the only crossing).
struct PingPong {
  SiteEngine& eng;
  SiteEngine::Channel& to1;
  SiteEngine::Channel& to0;
  Duration hop;
  int remaining;
  std::vector<std::string> log0, log1;

  void kickoff() {
    eng.site(0).schedule_at(1, [this] {
      log0.push_back("start@" + std::to_string(eng.site(0).now()));
      to1.push(eng.site(0).now() + hop, [this] { recv_at1(); });
    });
  }
  void recv_at1() {
    log1.push_back("r1@" + std::to_string(eng.site(1).now()));
    if (--remaining > 0)
      to0.push(eng.site(1).now() + hop, [this] { recv_at0(); });
  }
  void recv_at0() {
    log0.push_back("r0@" + std::to_string(eng.site(0).now()));
    to1.push(eng.site(0).now() + hop, [this] { recv_at1(); });
  }
};

struct RunResult {
  std::vector<std::string> log0, log1;
  Time end;
  std::uint64_t events;
  std::uint64_t windows;
};

RunResult run_ping_pong(int threads) {
  SiteEngine eng(/*sites=*/2, threads);
  eng.set_lookahead(7);
  SiteEngine::Channel& to1 = eng.make_channel(0, 1);
  SiteEngine::Channel& to0 = eng.make_channel(1, 0);
  PingPong pp{eng, to1, to0, /*hop=*/7, /*remaining=*/50, {}, {}};
  pp.kickoff();
  // Unrelated site-local background events interleave with the
  // arrivals and must land in the same order regardless of threads.
  for (Time t = 3; t < 300; t += 13) {
    eng.site(0).schedule_at(t, [&pp, t] {
      pp.log0.push_back("bg0@" + std::to_string(t));
    });
    eng.site(1).schedule_at(t, [&pp, t] {
      pp.log1.push_back("bg1@" + std::to_string(t));
    });
  }
  eng.run();
  return RunResult{std::move(pp.log0), std::move(pp.log1), eng.now(),
                   eng.events_executed(), eng.stats().windows};
}

// Worker count is a pure wall-clock knob: a 1-thread and a 2-thread run
// of the same partition must produce identical per-site event orders,
// final clocks, and window counts.
TEST(SiteEngine, ThreadCountNeverChangesEventOrder) {
  const RunResult seq = run_ping_pong(/*threads=*/1);
  const RunResult par = run_ping_pong(/*threads=*/2);
  EXPECT_EQ(seq.log0, par.log0);
  EXPECT_EQ(seq.log1, par.log1);
  EXPECT_EQ(seq.end, par.end);
  EXPECT_EQ(seq.events, par.events);
  EXPECT_EQ(seq.windows, par.windows);
  // Sanity: the ping-pong actually crossed sites many times.
  EXPECT_GE(seq.log1.size(), 50u);
}

// With no channels wired the sites cannot interact and simply drain
// independently; now() is the max over site clocks.
TEST(SiteEngine, UnwiredSitesDrainIndependently) {
  SiteEngine eng(/*sites=*/2, /*threads=*/1);
  int fired = 0;
  eng.site(0).schedule_at(10, [&fired] { ++fired; });
  eng.site(1).schedule_at(25, [&fired] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 25);
  EXPECT_EQ(eng.events_executed(), 2u);
}

// Wired but silent channels must not prevent termination, and the
// merged end time still equals the sequential max.
TEST(SiteEngine, DrainsWithEmptyChannels) {
  SiteEngine eng(/*sites=*/2, /*threads=*/1);
  eng.set_lookahead(5);
  eng.make_channel(0, 1);
  eng.make_channel(1, 0);
  int fired = 0;
  eng.site(0).schedule_at(40, [&fired] { ++fired; });
  eng.site(1).schedule_at(12, [&fired] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 40);
  EXPECT_EQ(eng.stats().channel_msgs, 0u);
}

// A 1-site engine degenerates to Simulator::run().
TEST(SiteEngine, SingleSiteRunsSequentially) {
  SiteEngine eng(/*sites=*/1, /*threads=*/4);
  EXPECT_FALSE(eng.parallel());
  int fired = 0;
  eng.site(0).schedule_at(5, [&fired] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.stats().windows, 0u);
}

}  // namespace
}  // namespace ibwan::sim
