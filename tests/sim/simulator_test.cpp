#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ibwan::sim {
namespace {

using namespace ibwan::sim::literals;

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTimeEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = 0;
  sim.schedule(1234, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 1234u);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule(100, chain);
  };
  sim.schedule(100, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(99999);
  bool ran = false;
  sim.schedule(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.schedule(30, [&] { ++fired; });
  const bool more = sim.run_until(20);
  EXPECT_TRUE(more);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilWithNoEventsAdvancesClock) {
  Simulator sim;
  EXPECT_FALSE(sim.run_until(1000));
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_until(100);
  int fired = 0;
  sim.schedule(50, [&] { ++fired; });
  sim.schedule(250, [&] { ++fired; });
  sim.run_for(100);
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  sim.run_until(42);
  Time seen = 1;
  sim.schedule(0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Simulator, EventCountersTrack) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  EXPECT_EQ(sim.pending(), 7u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(DurationCeil, RoundsUpFractionalNanoseconds) {
  EXPECT_EQ(duration_ceil(0.0), 0u);
  EXPECT_EQ(duration_ceil(1.0), 1u);
  EXPECT_EQ(duration_ceil(1.0001), 2u);
  EXPECT_EQ(duration_ceil(1024.0), 1024u);
  EXPECT_EQ(duration_ceil(1023.5), 1024u);
}

TEST(TimeLiterals, ConvertCorrectly) {
  EXPECT_EQ(3_us, 3000u);
  EXPECT_EQ(2_ms, 2'000'000u);
  EXPECT_EQ(1_s, 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_microseconds(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(500'000'000), 0.5);
}

}  // namespace
}  // namespace ibwan::sim
