#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace ibwan::sim {
namespace {

using namespace ibwan::sim::literals;

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTimeEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = 0;
  sim.schedule(1234, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 1234u);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule(100, chain);
  };
  sim.schedule(100, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(99999);
  bool ran = false;
  sim.schedule(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.schedule(30, [&] { ++fired; });
  const bool more = sim.run_until(20);
  EXPECT_TRUE(more);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilWithNoEventsAdvancesClock) {
  Simulator sim;
  EXPECT_FALSE(sim.run_until(1000));
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_until(100);
  int fired = 0;
  sim.schedule(50, [&] { ++fired; });
  sim.schedule(250, [&] { ++fired; });
  sim.run_for(100);
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  sim.run_until(42);
  Time seen = 1;
  sim.schedule(0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Simulator, EventCountersTrack) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  EXPECT_EQ(sim.pending(), 7u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelBeforeFireThenLaterEventsStillRun) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] { order.push_back(1); });
  EventId victim = sim.schedule(20, [&] { order.push_back(2); });
  sim.schedule(30, [&] { order.push_back(3); });
  sim.cancel(victim);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.schedule(10, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.cancel(id);  // already fired: must not disturb anything
  bool ran = false;
  sim.schedule(5, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, DoubleCancelIsNoOp) {
  Simulator sim;
  bool victim_ran = false;
  bool other_ran = false;
  EventId id = sim.schedule(10, [&] { victim_ran = true; });
  sim.schedule(20, [&] { other_ran = true; });
  sim.cancel(id);
  sim.cancel(id);  // second cancel of the same id
  sim.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(other_ran);
}

TEST(Simulator, SelfCancelDuringCallbackIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventId id = 0;
  id = sim.schedule(10, [&] {
    ++fired;
    sim.cancel(id);  // cancelling the event currently executing
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelZeroDelayEvent) {
  Simulator sim;
  sim.run_until(50);
  bool ran = false;
  std::vector<int> order;
  sim.schedule(0, [&] { order.push_back(1); });
  EventId id = sim.schedule(0, [&] { ran = true; });
  sim.schedule(0, [&] { order.push_back(2); });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, MixedZeroDelayAndHeapEventsInterleaveBySequence) {
  // Events at the same instant must run in global insertion order even
  // when some were scheduled with delay 0 (FIFO path) and others with a
  // positive delay landing at the same time (heap path).
  Simulator sim;
  std::vector<int> order;
  // Both outer events land at t=10 and run in insertion order. The inner
  // zero-delay event is scheduled while the first executes, so its
  // sequence number is allocated after the second outer event's and it
  // must run last despite taking the fast path.
  sim.schedule(10, [&] {
    order.push_back(0);
    sim.schedule(0, [&] { order.push_back(1); });
  });
  sim.schedule(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Simulator, CancelledEventsDoNotLeakSlots) {
  // Regression: the previous engine accumulated cancelled ids in a
  // tombstone set; ids cancelled after their event had already fired
  // were never erased. The slot pool must stay bounded under a
  // schedule/cancel churn loop.
  Simulator sim;
  for (int i = 0; i < 100; ++i) {
    EventId id = sim.schedule(1, [] {});
    sim.cancel(id);
  }
  sim.run();
  const std::size_t settled = sim.slot_capacity();
  for (int round = 0; round < 10'000; ++round) {
    EventId pending = sim.schedule(1, [] {});
    sim.cancel(pending);
    EventId fired = sim.schedule(1, [] {});
    sim.run();
    sim.cancel(fired);  // cancel-after-fire must not grow anything either
  }
  EXPECT_EQ(sim.slot_capacity(), settled);
}

TEST(Simulator, PendingCountTracksCancellation) {
  Simulator sim;
  EventId a = sim.schedule(10, [] {});
  sim.schedule(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, DeterministicAcrossRunsWithSameSeed) {
  // Two identical stochastic workloads must execute the same number of
  // events in the same order — the property every figure regeneration
  // depends on.
  auto run_workload = [](std::uint64_t seed) {
    Simulator sim;
    sim.seed(seed);
    std::vector<std::uint64_t> trace;
    std::function<void()> tick = [&] {
      trace.push_back(sim.now());
      if (trace.size() < 500) {
        sim.schedule(sim.rng().uniform(1, 100), tick);
        if (trace.size() % 3 == 0) {
          EventId id =
              sim.schedule(sim.rng().uniform(1, 100), [&] {
                trace.push_back(~sim.now());
              });
          if (trace.size() % 6 == 0) sim.cancel(id);
        }
      }
    };
    sim.schedule(1, tick);
    sim.run();
    return std::pair(trace, sim.events_executed());
  };
  const auto a = run_workload(42);
  const auto b = run_workload(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run_workload(7);
  EXPECT_NE(a.first, c.first);
}

TEST(Simulator, ManyEventsStressOrdering) {
  // Larger-scale ordering check exercising heap growth, removal from the
  // middle, and the 4-ary sift paths.
  Simulator sim;
  sim.seed(123);
  std::vector<std::pair<Time, int>> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    const Time t = sim.rng().uniform(0, 500);
    ids.push_back(
        sim.schedule_at(t, [&fired, &sim, i] { fired.push_back({sim.now(), i}); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
  sim.run();
  EXPECT_EQ(fired.size(), 2000u - (2000u + 2) / 3);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);  // insertion order
    }
  }
}

TEST(DurationCeil, RoundsUpFractionalNanoseconds) {
  EXPECT_EQ(duration_ceil(0.0), 0u);
  EXPECT_EQ(duration_ceil(1.0), 1u);
  EXPECT_EQ(duration_ceil(1.0001), 2u);
  EXPECT_EQ(duration_ceil(1024.0), 1024u);
  EXPECT_EQ(duration_ceil(1023.5), 1024u);
}

TEST(TimeLiterals, ConvertCorrectly) {
  EXPECT_EQ(3_us, 3000u);
  EXPECT_EQ(2_ms, 2'000'000u);
  EXPECT_EQ(1_s, 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_microseconds(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(500'000'000), 0.5);
}

}  // namespace
}  // namespace ibwan::sim
