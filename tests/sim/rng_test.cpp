#include "sim/rng.hpp"

#include <gtest/gtest.h>

namespace ibwan::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundRespected) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApproximates) {
  Rng r(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ChanceFrequencyApproximatesP) {
  Rng r(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng r(42);
  const auto first = r.next_u64();
  r.next_u64();
  r.reseed(42);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace ibwan::sim
