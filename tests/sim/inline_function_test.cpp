#include "sim/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace ibwan::sim {
namespace {

// Counts constructions and destructions of captured state so tests can
// assert that InlineFunction destroys exactly what it creates.
struct Tracker {
  static int live;
  static int destroyed;
  static void reset() {
    live = 0;
    destroyed = 0;
  }
  Tracker() { ++live; }
  Tracker(const Tracker&) { ++live; }
  Tracker(Tracker&&) noexcept { ++live; }
  ~Tracker() {
    --live;
    ++destroyed;
  }
};
int Tracker::live = 0;
int Tracker::destroyed = 0;

TEST(InlineFunction, DefaultIsEmpty) {
  InlineFunction f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_FALSE(f.is_inline());
}

TEST(InlineFunction, InvokesSmallCapture) {
  int calls = 0;
  InlineFunction f([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, CaptureExactlyAtBufferLimitStaysInline) {
  std::array<std::byte, InlineFunction::kInlineCapacity> payload{};
  payload[0] = std::byte{7};
  int sink = 0;
  InlineFunction f([payload, &sink]() mutable {
    sink += static_cast<int>(payload[0]);
  });
  // capture = 48B array + 8B pointer > 48: heap path.
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(sink, 7);

  std::array<std::byte, InlineFunction::kInlineCapacity - sizeof(void*)>
      small{};
  small[0] = std::byte{3};
  static int static_sink;
  static_sink = 0;
  InlineFunction g([small, p = &static_sink] {
    *p += static_cast<int>(small[0]);
  });
  // capture = 40B array + 8B pointer == 48: inline path.
  EXPECT_TRUE(g.is_inline());
  g();
  EXPECT_EQ(static_sink, 3);
}

TEST(InlineFunction, LargeCaptureTakesHeapPathAndStillWorks) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes
  big[15] = 99;
  std::uint64_t out = 0;
  InlineFunction f([big, &out] { out = big[15]; });
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(out, 99u);
}

TEST(InlineFunction, MoveOnlyCaptureInline) {
  auto owned = std::make_unique<int>(41);
  InlineFunction f([p = std::move(owned)]() mutable { ++*p; });
  EXPECT_TRUE(f.is_inline());
  f();
  // Move the callable; ownership must follow.
  InlineFunction g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));
  ASSERT_TRUE(static_cast<bool>(g));
  g();
}

TEST(InlineFunction, MoveTransfersInlineState) {
  int calls = 0;
  InlineFunction f([&calls, pad = std::array<std::uint64_t, 4>{}] {
    ++calls;
  });
  ASSERT_TRUE(f.is_inline());
  InlineFunction g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));
  g();
  EXPECT_EQ(calls, 1);

  InlineFunction h;
  h = std::move(g);
  EXPECT_FALSE(static_cast<bool>(g));
  h();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, MoveTransfersHeapState) {
  Tracker::reset();
  {
    std::array<std::byte, 100> pad{};
    InlineFunction f([t = Tracker(), pad] { (void)pad; });
    EXPECT_FALSE(f.is_inline());
    const int live_after_emplace = Tracker::live;
    InlineFunction g(std::move(f));
    // Heap relocation moves the pointer, not the capture: no new Tracker.
    EXPECT_EQ(Tracker::live, live_after_emplace);
    g();
  }
  EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFunction, DestroysInlineCaptureExactlyOnce) {
  Tracker::reset();
  {
    InlineFunction f([t = Tracker()] {});
    EXPECT_TRUE(f.is_inline());
    EXPECT_GE(Tracker::live, 1);
  }
  EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFunction, ResetDestroysCapture) {
  Tracker::reset();
  InlineFunction f([t = Tracker()] {});
  EXPECT_EQ(Tracker::live, 1);
  f.reset();
  EXPECT_EQ(Tracker::live, 0);
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, ReassignmentDestroysPreviousCapture) {
  Tracker::reset();
  InlineFunction f([t = Tracker()] {});
  EXPECT_EQ(Tracker::live, 1);
  f = InlineFunction([] {});
  EXPECT_EQ(Tracker::live, 0);
  f();
}

TEST(InlineFunction, MoveAssignOntoHeldCallableDestroysIt) {
  Tracker::reset();
  InlineFunction a([t = Tracker()] {});
  InlineFunction b([t = Tracker()] {});
  EXPECT_EQ(Tracker::live, 2);
  a = std::move(b);
  EXPECT_EQ(Tracker::live, 1);
  EXPECT_FALSE(static_cast<bool>(b));
  a();
}

TEST(InlineFunction, EmplaceConstructsInPlace) {
  InlineFunction f;
  int calls = 0;
  f.emplace([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(calls, 1);

  // emplace over an existing callable destroys the old capture first.
  Tracker::reset();
  f.emplace([t = Tracker()] {});
  EXPECT_EQ(Tracker::live, 1);
  f.emplace([] {});
  EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFunction, SelfMoveAssignIsSafe) {
  int calls = 0;
  InlineFunction f([&calls] { ++calls; });
  InlineFunction& ref = f;
  f = std::move(ref);
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ibwan::sim
