#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace ibwan::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanMinMaxSum) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(OnlineStats, VarianceMatchesTextbook) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  // Sample variance of 1..5 = 2.5.
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
  EXPECT_NEAR(s.stddev(), 1.5811388300841898, 1e-12);
}

TEST(LogHistogram, BinsPowersOfTwo) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1024);
  EXPECT_EQ(h.total(), 6u);
  // 0 and 1 land in bin 0; 2 in bin 1; 3,4 in bin 2; 1024 in bin 10.
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.bins()[2], 2u);
  EXPECT_EQ(h.bins()[10], 1u);
}

TEST(LogHistogram, CountBelow) {
  LogHistogram h;
  for (std::uint64_t v : {1u, 2u, 100u, 5000u, 100000u}) h.add(v);
  EXPECT_EQ(h.count_below(8), 3u);   // <= 128: 1, 2, 100
  EXPECT_EQ(h.count_below(20), 5u);  // everything
}

TEST(LogHistogram, QuantileMonotone) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(10);
  for (int i = 0; i < 100; ++i) h.add(10000);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.25), 10u * 2);
  EXPECT_GE(h.quantile(0.9), 4096u);
}

TEST(Series, AtFindsExactPoint) {
  Series s;
  s.name = "curve";
  s.add(1.0, 10.0);
  s.add(2.0, 20.0);
  EXPECT_DOUBLE_EQ(s.at(2.0), 20.0);
  EXPECT_TRUE(std::isnan(s.at(3.0)));
}

}  // namespace
}  // namespace ibwan::sim
