#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace ibwan::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanMinMaxSum) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(OnlineStats, VarianceMatchesTextbook) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  // Sample variance of 1..5 = 2.5.
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
  EXPECT_NEAR(s.stddev(), 1.5811388300841898, 1e-12);
}

TEST(LogHistogram, BinsPowersOfTwo) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1024);
  EXPECT_EQ(h.total(), 6u);
  // 0 and 1 land in bin 0; 2 in bin 1; 3,4 in bin 2; 1024 in bin 10.
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.bins()[2], 2u);
  EXPECT_EQ(h.bins()[10], 1u);
}

TEST(LogHistogram, CountBelow) {
  LogHistogram h;
  for (std::uint64_t v : {1u, 2u, 100u, 5000u, 100000u}) h.add(v);
  EXPECT_EQ(h.count_below(8), 3u);   // <= 128: 1, 2, 100
  EXPECT_EQ(h.count_below(20), 5u);  // everything
}

TEST(LogHistogram, QuantileMonotone) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(10);
  for (int i = 0; i < 100; ++i) h.add(10000);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.25), 10u * 2);
  EXPECT_GE(h.quantile(0.9), 4096u);
}

TEST(LogHistogram, QuantileEmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(LogHistogram, QuantileSingleBinConsistentAcrossP) {
  // Regression: p near 1.0 used to fall through to the *upper* edge of
  // the last bin while every other p reported lower edges, so
  // quantile(1.0) of a single-sample histogram disagreed with
  // quantile(0.5) of the same histogram.
  LogHistogram h;
  h.add(1);  // bin 0, lower edge 0
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(LogHistogram, QuantileTopBinReportsLowerEdge) {
  LogHistogram h;
  h.add(100);  // bin 7: (64, 128]
  EXPECT_EQ(h.quantile(0.5), 64u);
  EXPECT_EQ(h.quantile(1.0), 64u);  // was 128 (upper edge) before the fix
}

TEST(LogHistogram, QuantileAllSamplesInOneBin) {
  // Every quantile of a degenerate distribution is the same bin edge.
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(3000);  // bin 12: (2048, 4096]
  for (double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(p), 2048u) << "p=" << p;
  }
}

TEST(LogHistogram, QuantileClampsOutOfRangeP) {
  // Regression: p outside [0, 1] (or NaN) used to cast straight to an
  // unsigned target count — undefined behaviour for negative/NaN and a
  // nonsense target for p > 1. Out-of-range p now clamps to the ends.
  LogHistogram h;
  h.add(10);    // bin 4
  h.add(1000);  // bin 10
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()),
            h.quantile(0.0));
}

TEST(Series, AtFindsExactPoint) {
  Series s;
  s.name = "curve";
  s.add(1.0, 10.0);
  s.add(2.0, 20.0);
  EXPECT_DOUBLE_EQ(s.at(2.0), 20.0);
  EXPECT_TRUE(std::isnan(s.at(3.0)));
}

TEST(Series, AtToleratesFloatingPointNoise) {
  // Regression: lookups used exact double equality, so an x computed by
  // accumulation (0.1 summed ten times != 1.0) missed the point and the
  // report printed a hole in the table.
  double x = 0.0;
  for (int i = 0; i < 10; ++i) x += 0.1;
  ASSERT_NE(x, 1.0);  // the classic binary-fraction drift
  Series s;
  s.add(x, 42.0);
  EXPECT_DOUBLE_EQ(s.at(1.0), 42.0);
  EXPECT_DOUBLE_EQ(s.at(x), 42.0);
  // Distinct points stay distinct: the epsilon is relative and tiny.
  EXPECT_TRUE(std::isnan(s.at(1.01)));
  EXPECT_TRUE(std::isnan(s.at(0.0)));
}

TEST(Series, AtZeroMatchesZero) {
  Series s;
  s.add(0.0, 7.0);
  EXPECT_DOUBLE_EQ(s.at(0.0), 7.0);
  EXPECT_TRUE(std::isnan(s.at(1e-30)));  // not "nearly equal" to 0
}

}  // namespace
}  // namespace ibwan::sim
