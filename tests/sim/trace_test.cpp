#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ibwan::sim {
namespace {

TEST(FlightRecorder, DisarmedRecordIsANoOp) {
  FlightRecorder fr(8);
  fr.record(100, TraceKind::kPktSend, "link", 1, 2);
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_FALSE(fr.armed());
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEvents) {
  FlightRecorder fr(4);
  fr.arm();
  for (std::uint64_t i = 0; i < 6; ++i) {
    fr.record(static_cast<Time>(i * 10), TraceKind::kPktSend, "link", i);
  }
  fr.disarm();

  EXPECT_EQ(fr.recorded(), 6u);
  EXPECT_EQ(fr.size(), 4u);
  const std::vector<TraceEvent> evs = fr.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest surviving event first: 2, 3, 4, 5.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].a, i + 2);
    EXPECT_EQ(evs[i].time, static_cast<Time>((i + 2) * 10));
  }
}

TEST(FlightRecorder, ArmMakesKTraceCaptureActiveAndRoutesLogLines) {
  ASSERT_FALSE(trace_capture_active());
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);  // nothing reaches stderr

  FlightRecorder fr(16);
  fr.arm();
  EXPECT_TRUE(trace_capture_active());
  // Routed through the thread-local sink even though the process
  // threshold would suppress the line entirely.
  IBWAN_TRACE(Time{12'345}, "rc-qp0", "psn=%d resent", 7);
  fr.disarm();
  set_log_level(prev);

  EXPECT_FALSE(trace_capture_active());
  ASSERT_EQ(fr.size(), 1u);
  const TraceEvent ev = fr.events()[0];
  EXPECT_EQ(ev.kind, TraceKind::kLog);
  EXPECT_EQ(ev.time, 12'345u);
  EXPECT_STREQ(ev.tag, "rc-qp0");
  EXPECT_NE(std::string(ev.text).find("psn=7"), std::string::npos);
}

TEST(FlightRecorder, NestedArmRestoresThePreviousSink) {
  FlightRecorder outer(8), inner(8);
  outer.arm();
  inner.arm();
  detail::route_trace_log(1, "t", "inner line");
  inner.disarm();
  detail::route_trace_log(2, "t", "outer line");
  outer.disarm();

  ASSERT_EQ(inner.size(), 1u);
  EXPECT_NE(std::string(inner.events()[0].text).find("inner"),
            std::string::npos);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_NE(std::string(outer.events()[0].text).find("outer"),
            std::string::npos);
}

TEST(FlightRecorder, SetCapacityClearsAndResizes) {
  FlightRecorder fr(4);
  fr.arm();
  fr.record(1, TraceKind::kPktSend, "l");
  fr.disarm();
  fr.set_capacity(2);
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.capacity(), 2u);
  fr.arm();
  for (int i = 0; i < 5; ++i) fr.record(i, TraceKind::kPktDrop, "l");
  fr.disarm();
  EXPECT_EQ(fr.size(), 2u);
}

TEST(FlightRecorder, FormatIsStableAndTagged) {
  FlightRecorder fr(4);
  fr.arm();
  fr.record(1'500, TraceKind::kWindowStall, "rc-qp3", 9, 16);
  fr.disarm();
  const std::string line = fr.events()[0].format();
  EXPECT_NE(line.find("window-stall"), std::string::npos);
  EXPECT_NE(line.find("rc-qp3"), std::string::npos);
  EXPECT_NE(line.find("a=9"), std::string::npos);
  EXPECT_NE(line.find("b=16"), std::string::npos);
}

/// A pure-sim seeded workload: a chain of events that records one
/// trace entry per firing with rng-drawn payloads and delays.
std::vector<std::string> run_seeded_workload(std::uint64_t seed) {
  Simulator sim;
  sim.seed(seed);
  FlightRecorder& fr = sim.recorder();
  fr.set_capacity(64);
  fr.arm();
  struct Hop {
    Simulator* sim;
    int remaining;
    void fire() {
      sim->recorder().record(sim->now(), TraceKind::kPktSend, "hop",
                             sim->rng().uniform(1000));
      if (--remaining > 0) {
        const Duration d = 1 + sim->rng().uniform(50);
        sim->schedule(d, [this] { fire(); });
      }
    }
  };
  Hop hop{&sim, 40};
  sim.schedule(0, [&hop] { hop.fire(); });
  sim.run();
  fr.disarm();

  std::vector<std::string> lines;
  for (const TraceEvent& ev : fr.events()) lines.push_back(ev.format());
  return lines;
}

TEST(FlightRecorder, DeterministicOrderingUnderSeededWorkloads) {
  const auto first = run_seeded_workload(42);
  const auto second = run_seeded_workload(42);
  ASSERT_EQ(first.size(), 40u);
  EXPECT_EQ(first, second);
  // A different seed produces a different (but equally sized) tape.
  const auto other = run_seeded_workload(43);
  ASSERT_EQ(other.size(), 40u);
  EXPECT_NE(first, other);
}

/// Dump-on-failure guard: the pattern README documents for debugging —
/// arm a recorder for the scenario, and dump the tape only when the
/// test actually failed.
TEST(FlightRecorder, DumpOnFailureGuardStaysSilentOnSuccess) {
  Simulator sim;
  FlightRecorder& fr = sim.recorder();
  fr.arm();
  fr.record(10, TraceKind::kAckRecv, "rc-qp0", 5, 1);
  fr.disarm();

  EXPECT_EQ(fr.size(), 1u);
  if (::testing::Test::HasFailure()) fr.dump(stderr);
  // (Nothing failed above, so nothing was printed; the guard itself is
  // what this test exercises.)
  EXPECT_FALSE(::testing::Test::HasFailure());
}

}  // namespace
}  // namespace ibwan::sim
