#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace ibwan::sim {
namespace {

using namespace ibwan::sim::literals;

TEST(Task, RunsEagerlyUntilFirstSuspend) {
  Simulator sim;
  bool before = false, after = false;
  auto coro = [&]() -> Task {
    before = true;
    co_await sleep_for(sim, 100);
    after = true;
  };
  coro();
  EXPECT_TRUE(before);
  EXPECT_FALSE(after);
  sim.run();
  EXPECT_TRUE(after);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Task, SleepSequenceAccumulatesTime) {
  Simulator sim;
  std::vector<Time> stamps;
  auto coro = [&]() -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await sleep_for(sim, 10);
      stamps.push_back(sim.now());
    }
  };
  coro();
  sim.run();
  EXPECT_EQ(stamps, (std::vector<Time>{10, 20, 30}));
}

TEST(Task, ZeroSleepYieldsButResumesSameTime) {
  Simulator sim;
  Time resumed = 999;
  auto coro = [&]() -> Task {
    co_await sleep_for(sim, 0);
    resumed = sim.now();
  };
  coro();
  sim.run();
  EXPECT_EQ(resumed, 0u);
}

TEST(Trigger, ReleasesAllWaiters) {
  Simulator sim;
  Trigger t(sim);
  int released = 0;
  auto waiter = [&]() -> Task {
    co_await t.wait();
    ++released;
  };
  waiter();
  waiter();
  waiter();
  sim.run();
  EXPECT_EQ(released, 0);
  t.fire();
  sim.run();
  EXPECT_EQ(released, 3);
}

TEST(Trigger, AlreadyFiredDoesNotSuspend) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  bool done = false;
  auto waiter = [&]() -> Task {
    co_await t.wait();
    done = true;
  };
  waiter();
  EXPECT_TRUE(done);  // ran through without any event
}

TEST(Trigger, ResetReArms) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  t.reset();
  EXPECT_FALSE(t.fired());
  int released = 0;
  auto waiter = [&]() -> Task {
    co_await t.wait();
    ++released;
  };
  waiter();
  sim.run();
  EXPECT_EQ(released, 0);
  t.fire();
  sim.run();
  EXPECT_EQ(released, 1);
}

TEST(WaitGroup, JoinsForkedTasks) {
  Simulator sim;
  WaitGroup wg(sim);
  Time join_time = 0;
  auto worker = [&](Duration d) -> Task {
    co_await sleep_for(sim, d);
    wg.done();
  };
  auto master = [&]() -> Task {
    wg.add(3);
    worker(10);
    worker(50);
    worker(30);
    co_await wg.wait();
    join_time = sim.now();
  };
  master();
  sim.run();
  EXPECT_EQ(join_time, 50u);
}

TEST(Semaphore, BoundsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int concurrent = 0, peak = 0, finished = 0;
  auto worker = [&]() -> Task {
    co_await sem.acquire();
    ++concurrent;
    peak = std::max(peak, concurrent);
    co_await sleep_for(sim, 100);
    --concurrent;
    sem.release();
    ++finished;
  };
  for (int i = 0; i < 6; ++i) worker();
  sim.run();
  EXPECT_EQ(finished, 6);
  EXPECT_EQ(peak, 2);
  // 6 workers, 2 at a time, 100ns each -> 3 batches.
  EXPECT_EQ(sim.now(), 300u);
}

TEST(Semaphore, TryAcquireReflectsPermits) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_EQ(sem.available(), 1);
}

TEST(Future, DeliversValueToAwaiter) {
  Simulator sim;
  Future<int> f(sim);
  int got = 0;
  auto consumer = [&]() -> Task { got = co_await f; };
  consumer();
  EXPECT_EQ(got, 0);
  f.set_value(42);
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(Future, ValueSetBeforeAwaitIsImmediate) {
  Simulator sim;
  Future<int> f(sim);
  f.set_value(7);
  int got = 0;
  auto consumer = [&]() -> Task { got = co_await f; };
  consumer();
  EXPECT_EQ(got, 7);
}

TEST(Future, WorksAcrossSimulatedDelay) {
  Simulator sim;
  Future<Unit> f(sim);
  Time done_at = 0;
  auto producer = [&]() -> Task {
    co_await sleep_for(sim, 500);
    f.set_value(Unit{});
  };
  auto consumer = [&]() -> Task {
    co_await f;
    done_at = sim.now();
  };
  producer();
  consumer();
  sim.run();
  EXPECT_EQ(done_at, 500u);
}

}  // namespace
}  // namespace ibwan::sim
