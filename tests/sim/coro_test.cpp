#include "sim/coro.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan::sim {
namespace {

using namespace ibwan::sim::literals;

Coro<int> add_later(Simulator& sim, int a, int b, Duration d) {
  co_await SleepAwaiter(sim, d);
  co_return a + b;
}

Coro<void> nop() { co_return; }

TEST(Coro, ReturnsValueAcrossSuspension) {
  Simulator sim;
  int got = 0;
  [](Simulator& s, int* out) -> Task {
    *out = co_await add_later(s, 2, 3, 100);
  }(sim, &got);
  EXPECT_EQ(got, 0);
  sim.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Coro, EagerCompletionIsImmediatelyReady) {
  Simulator sim;
  bool ran = false;
  [](bool* flag) -> Task {
    co_await nop();  // completes synchronously; no suspension
    *flag = true;
  }(&ran);
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Coro, NestedCompositionAccumulates) {
  Simulator sim;
  auto inner = [](Simulator& s, int x) -> Coro<int> {
    co_await SleepAwaiter(s, 10);
    co_return x * 2;
  };
  // Build the chain as a single coroutine to keep lifetimes simple.
  int got = 0;
  [](Simulator& s, decltype(inner)& f, int* out) -> Task {
    int v = co_await f(s, 1);
    v = co_await f(s, v);
    v = co_await f(s, v);
    *out = v;
  }(sim, inner, &got);
  sim.run();
  EXPECT_EQ(got, 8);
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Coro, DoneReflectsState) {
  Simulator sim;
  Coro<int> c = add_later(sim, 1, 1, 50);
  EXPECT_FALSE(c.done());
  sim.run();
  EXPECT_TRUE(c.done());
}

TEST(Coro, ManyConcurrentCoroutinesInterleave) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [&](int id, Duration d) -> Task {
    co_await SleepAwaiter(sim, d);
    order.push_back(id);
  };
  worker(3, 30);
  worker(1, 10);
  worker(2, 20);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Coro, SequentialAwaitsOfFutures) {
  Simulator sim;
  Future<int> f1(sim), f2(sim);
  int sum = 0;
  [](Future<int> a, Future<int> b, int* out) -> Task {
    *out = co_await a + co_await b;
  }(f1, f2, &sum);
  sim.schedule(5, [&] { f1.set_value(10); });
  sim.schedule(9, [&] { f2.set_value(20); });
  sim.run();
  EXPECT_EQ(sum, 30);
}

}  // namespace
}  // namespace ibwan::sim
