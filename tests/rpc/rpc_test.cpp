// Direct RPC-transport tests (both TCP and RDMA flavours): xid
// matching under concurrency, bulk paths in both directions, and
// chunking arithmetic.
#include "rpc/rpc.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::rpc {
namespace {

using namespace ibwan::sim::literals;

struct EchoArgs {
  int id = 0;
};

/// Handler: replies after a per-call delay with sizes derived from args.
Handler make_echo_handler(sim::Simulator& sim, std::uint64_t bulk_out) {
  return [&sim, bulk_out](const CallArgs& call) -> sim::Coro<ReplyInfo> {
    co_await sim::SleepAwaiter(sim, 10'000);
    ReplyInfo r;
    r.reply_bytes = 64;
    r.data_to_client = bulk_out;
    r.body = call.body;  // echo the typed body back
    co_return r;
  };
}

struct RdmaWorld {
  explicit RdmaWorld(sim::Duration delay = 0, RdmaRpcConfig cfg = {})
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        server_hca(fabric.node(0), {}),
        client_hca(fabric.node(1), {}),
        server(server_hca, cfg),
        client(client_hca, server) {
    fabric.set_wan_delay(delay);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca server_hca, client_hca;
  RdmaRpcServer server;
  RdmaRpcClient client;
};

struct TcpWorld {
  TcpWorld()
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        server_hca(fabric.node(0), {}),
        client_hca(fabric.node(1), {}),
        server_dev(server_hca, {}),
        client_dev(client_hca, {}),
        server_stack(server_dev),
        client_stack(client_dev),
        server(server_stack, 111),
        client(client_stack, 0, 111) {
    ipoib::IpoibDevice::link(server_dev, client_dev);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca server_hca, client_hca;
  ipoib::IpoibDevice server_dev, client_dev;
  tcp::TcpStack server_stack, client_stack;
  TcpRpcServer server;
  TcpRpcClient client;
};

TEST(RdmaRpc, EchoPreservesTypedBody) {
  RdmaWorld w;
  w.server.set_handler(make_echo_handler(w.sim, 0));
  int got = 0;
  [](RdmaWorld& rw, int* out) -> sim::Task {
    auto body = std::make_shared<EchoArgs>();
    body->id = 42;
    CallArgs call{.proc = 1, .arg_bytes = 16, .body = std::move(body)};
    ReplyInfo r = co_await rw.client.call(std::move(call));
    *out = static_cast<const EchoArgs*>(r.body.get())->id;
  }(w, &got);
  w.sim.run();
  EXPECT_EQ(got, 42);
}

TEST(RdmaRpc, ConcurrentCallsMatchByXid) {
  RdmaWorld w;
  // Handler delays proportionally to id so replies complete out of
  // submission order.
  w.server.set_handler([&](const CallArgs& call) -> sim::Coro<ReplyInfo> {
    const int id = call.args_as<EchoArgs>().id;
    co_await sim::SleepAwaiter(w.sim, (10 - id) * 100'000);
    ReplyInfo r;
    r.reply_bytes = 64;
    r.body = call.body;
    co_return r;
  });
  std::vector<int> results(8, -1);
  for (int i = 0; i < 8; ++i) {
    [](RdmaWorld& rw, int idx, std::vector<int>* out) -> sim::Task {
      auto body = std::make_shared<EchoArgs>();
      body->id = idx;
      CallArgs call{.proc = 1, .arg_bytes = 16, .body = std::move(body)};
      ReplyInfo r = co_await rw.client.call(std::move(call));
      (*out)[idx] = static_cast<const EchoArgs*>(r.body.get())->id;
    }(w, i, &results);
  }
  w.sim.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[i], i);
}

TEST(RdmaRpc, BulkToClientArrivesBeforeReply) {
  // RC ordering: the reply (and thus call completion) implies all the
  // chunked writes landed. Completion time must cover data transfer.
  RdmaWorld w(100_us);
  w.server.set_handler(make_echo_handler(w.sim, 4 << 20));
  sim::Time done = 0;
  [](RdmaWorld& rw, sim::Time* t) -> sim::Task {
    co_await rw.client.call(CallArgs{.proc = 1, .arg_bytes = 16});
    *t = rw.sim.now();
  }(w, &done);
  w.sim.run();
  // 4 MB at ~1 GB/s is >= 4 ms on top of the round trip.
  EXPECT_GT(done, 4'000_us);
}

TEST(RdmaRpc, BulkToServerUsesRdmaReads) {
  RdmaWorld w;
  std::uint64_t seen_data = 0;
  w.server.set_handler([&](const CallArgs& call) -> sim::Coro<ReplyInfo> {
    seen_data = call.data_to_server;
    co_return ReplyInfo{.reply_bytes = 64};
  });
  [](RdmaWorld& rw) -> sim::Task {
    co_await rw.client.call(
        CallArgs{.proc = 2, .arg_bytes = 16, .data_to_server = 100'000});
  }(w);
  w.sim.run();
  EXPECT_EQ(seen_data, 100'000u);
}

TEST(RdmaRpc, ChunkSizeControlsWanCliff) {
  auto time_call = [](std::uint32_t chunk) {
    RdmaWorld w(1000_us, RdmaRpcConfig{.chunk_bytes = chunk});
    w.server.set_handler(make_echo_handler(w.sim, 1 << 20));
    sim::Time done = 0;
    [](RdmaWorld& rw, sim::Time* t) -> sim::Task {
      co_await rw.client.call(CallArgs{.proc = 1, .arg_bytes = 16});
      *t = rw.sim.now();
    }(w, &done);
    w.sim.run();
    return done;
  };
  EXPECT_LT(time_call(64 << 10), time_call(4 << 10));
}

TEST(TcpRpc, EchoAndConcurrency) {
  TcpWorld w;
  w.server.set_handler(make_echo_handler(w.sim, 10'000));
  std::vector<int> results(5, -1);
  for (int i = 0; i < 5; ++i) {
    [](TcpWorld& rw, int idx, std::vector<int>* out) -> sim::Task {
      auto body = std::make_shared<EchoArgs>();
      body->id = idx;
      CallArgs call{.proc = 1, .arg_bytes = 16, .body = std::move(body)};
      ReplyInfo r = co_await rw.client.call(std::move(call));
      (*out)[idx] = static_cast<const EchoArgs*>(r.body.get())->id;
    }(w, i, &results);
  }
  w.sim.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[i], i);
}

TEST(TcpRpc, LargeInlineBulkBothDirections) {
  TcpWorld w;
  std::uint64_t seen = 0;
  w.server.set_handler([&](const CallArgs& call) -> sim::Coro<ReplyInfo> {
    seen = call.data_to_server;
    co_return ReplyInfo{.reply_bytes = 64, .data_to_client = 2 << 20};
  });
  bool done = false;
  [](TcpWorld& rw, bool* flag) -> sim::Task {
    co_await rw.client.call(
        CallArgs{.proc = 3, .arg_bytes = 32, .data_to_server = 1 << 20});
    *flag = true;
  }(w, &done);
  w.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(seen, 1u << 20);
}

}  // namespace
}  // namespace ibwan::rpc
