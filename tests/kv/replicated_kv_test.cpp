// Replicated KV quorum coordinator: config validation, quorum
// completion, read repair, monotone apply, and the failure edge cases —
// a replica down mid-quorum must not block completion, and all replicas
// unreachable must resolve to a clean timeout/abort instead of a hang.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "kv/replicated.hpp"
#include "net/fabric.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan {
namespace {

using namespace ibwan::sim::literals;

/// A handler that accepts the call and never replies — an application
///-level "replica down" that works identically on every transport. The
/// suspended handler frame is intentionally leaked (repo convention for
/// drained-but-suspended coroutines).
rpc::Handler black_hole(sim::Simulator& sim) {
  return [&sim](const rpc::CallArgs&) -> sim::Coro<rpc::ReplyInfo> {
    sim::Trigger never(sim);
    co_await never.wait();
    co_return rpc::ReplyInfo{};
  };
}

/// Client on node 0, three RC-transport replicas on nodes 1..3.
struct World {
  explicit World(kv::QuorumConfig qc, sim::Duration delay = 0)
      : fabric(sim, {.nodes_a = 2, .nodes_b = 2}),
        client_hca(fabric.node(0), {}) {
    fabric.set_wan_delay(delay);
    std::vector<rpc::RpcClient*> channels;
    for (int i = 0; i < 3; ++i) {
      const net::NodeId node = static_cast<net::NodeId>(i + 1);
      hcas.push_back(std::make_unique<ib::Hca>(fabric.node(node),
                                               ib::HcaConfig{}));
      servers.push_back(std::make_unique<rpc::RdmaRpcServer>(*hcas.back()));
      replicas.push_back(std::make_unique<kv::ReplicaServer>(sim, node));
      servers.back()->set_handler(replicas.back()->handler());
      clients.push_back(std::make_unique<rpc::RdmaRpcClient>(
          client_hca, *servers.back()));
      channels.push_back(clients.back().get());
    }
    coord = std::make_unique<kv::ReplicatedKv>(sim, 0, std::move(channels),
                                               qc);
  }

  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca client_hca;
  std::vector<std::unique_ptr<ib::Hca>> hcas;
  std::vector<std::unique_ptr<rpc::RdmaRpcServer>> servers;
  std::vector<std::unique_ptr<kv::ReplicaServer>> replicas;
  std::vector<std::unique_ptr<rpc::RdmaRpcClient>> clients;
  std::unique_ptr<kv::ReplicatedKv> coord;
};

TEST(QuorumConfig, ValidateRejectsUnsafeAndMalformedConfigs) {
  kv::QuorumConfig qc;  // defaults: R=2, W=2
  EXPECT_EQ(kv::validate(qc, 3), "");
  // R + W == N forfeits quorum intersection.
  EXPECT_NE(kv::validate(qc, 4), "");
  qc.read_quorum = 0;
  EXPECT_NE(kv::validate(qc, 3), "");
  qc.read_quorum = 4;
  EXPECT_NE(kv::validate(qc, 3), "");
  qc = {};
  qc.op_timeout = 0;
  EXPECT_NE(kv::validate(qc, 3), "");
  qc = {};
  qc.backoff = 0.5;
  EXPECT_NE(kv::validate(qc, 3), "");
  qc = {};
  qc.max_retries = -1;
  EXPECT_NE(kv::validate(qc, 3), "");
  EXPECT_NE(kv::validate({}, 0), "");
}

TEST(ReplicatedKv, WriteThenReadReturnsWrittenVersion) {
  World w({});
  kv::OpResult put{}, get{};
  [](World& ww, kv::OpResult* p, kv::OpResult* g) -> sim::Task {
    *p = co_await ww.coord->put(7, 4096);
    *g = co_await ww.coord->get(7);
  }(w, &put, &get);
  w.sim.run();
  EXPECT_EQ(put.status, kv::OpStatus::kCompleted);
  EXPECT_EQ(get.status, kv::OpStatus::kCompleted);
  EXPECT_EQ(get.version, put.version);
  EXPECT_EQ(get.value_bytes, 4096u);
  EXPECT_EQ(w.coord->stats().ops_completed, 2u);
  // The write eventually lands on every replica, not just the quorum.
  for (const auto& r : w.replicas) {
    EXPECT_EQ(r->version_of(7), put.version);
  }
}

TEST(ReplicatedKv, ReadRepairPushesNewestVersionToStaleReplica) {
  kv::QuorumConfig qc;
  qc.read_quorum = 3;  // all responders visible -> repair is deterministic
  qc.write_quorum = 1;
  World w(qc);
  const kv::Version newest{500, 1};
  w.replicas[0]->preload(3, 2048, newest);
  w.replicas[1]->preload(3, 2048, newest);
  w.replicas[2]->preload(3, 1024, kv::Version{100, 1});  // stale
  kv::OpResult get{};
  [](World& ww, kv::OpResult* g) -> sim::Task {
    *g = co_await ww.coord->get(3);
  }(w, &get);
  w.sim.run();
  EXPECT_EQ(get.status, kv::OpStatus::kCompleted);
  EXPECT_EQ(get.version, newest);
  EXPECT_EQ(get.value_bytes, 2048u);
  EXPECT_EQ(w.coord->stats().read_repairs, 1u);
  // The asynchronous repair write brought the stale replica current.
  EXPECT_EQ(w.replicas[2]->version_of(3), newest);
  EXPECT_EQ(w.replicas[2]->value_size(3), 2048u);
}

TEST(ReplicatedKv, StaleWriteIsRejectedByMonotoneApply) {
  World w({});
  const kv::Version stored{1'000'000'000, 9};  // far newer than sim time
  for (auto& r : w.replicas) r->preload(4, 8192, stored);
  kv::OpResult put{};
  [](World& ww, kv::OpResult* p) -> sim::Task {
    *p = co_await ww.coord->put(4, 16);
  }(w, &put);
  w.sim.run();
  // The op completes (acks arrived) but no replica rolled back.
  EXPECT_EQ(put.status, kv::OpStatus::kCompleted);
  for (const auto& r : w.replicas) {
    EXPECT_EQ(r->version_of(4), stored);
    EXPECT_EQ(r->value_size(4), 8192u);
    EXPECT_EQ(r->stats().writes_stale, 1u);
    EXPECT_EQ(r->stats().writes_applied, 0u);
  }
}

TEST(ReplicatedKv, ConcurrentSameInstantPutsGetDistinctVersions) {
  World w({});
  kv::OpResult a{}, b{};
  [](World& ww, kv::OpResult* out) -> sim::Task {
    *out = co_await ww.coord->put(1, 111);
  }(w, &a);
  [](World& ww, kv::OpResult* out) -> sim::Task {
    *out = co_await ww.coord->put(1, 222);
  }(w, &b);
  w.sim.run();
  EXPECT_EQ(a.status, kv::OpStatus::kCompleted);
  EXPECT_EQ(b.status, kv::OpStatus::kCompleted);
  EXPECT_NE(a.version, b.version);
  // Replicas converge on the larger version.
  const kv::Version winner = std::max(a.version, b.version);
  for (const auto& r : w.replicas) EXPECT_EQ(r->version_of(1), winner);
}

TEST(ReplicatedKv, ReplicaDownMidQuorumStillCompletes) {
  World w({});
  w.servers[2]->set_handler(black_hole(w.sim));  // replica 2 goes dark
  kv::OpResult put{}, get{};
  [](World& ww, kv::OpResult* p, kv::OpResult* g) -> sim::Task {
    *p = co_await ww.coord->put(8, 512);
    *g = co_await ww.coord->get(8);
  }(w, &put, &get);
  w.sim.run();
  EXPECT_EQ(put.status, kv::OpStatus::kCompleted);
  EXPECT_EQ(get.status, kv::OpStatus::kCompleted);
  EXPECT_EQ(get.version, put.version);
  EXPECT_EQ(w.coord->stats().ops_completed, 2u);
  EXPECT_EQ(w.replicas[2]->stats().requests, 0u);
  // The dark replica's calls stay suspended: conservation is one-sided.
  EXPECT_LE(w.coord->stats().replica_acks + w.coord->stats().replica_fails +
                w.coord->stats().replica_late,
            w.coord->stats().replica_calls);
}

TEST(ReplicatedKv, AllReplicasUnreachableResolvesCleanlyNotHang) {
  kv::QuorumConfig qc;
  qc.op_timeout = 5 * sim::kMillisecond;
  qc.max_retries = 2;
  World w(qc);
  for (auto& s : w.servers) s->set_handler(black_hole(w.sim));
  kv::OpResult get{};
  [](World& ww, kv::OpResult* g) -> sim::Task {
    *g = co_await ww.coord->get(1);
  }(w, &get);
  w.sim.run();  // must drain — a hang would spin this forever
  EXPECT_EQ(get.status, kv::OpStatus::kTimedOut);
  EXPECT_EQ(get.attempts, 3);
  EXPECT_EQ(w.coord->stats().ops_issued, 1u);
  EXPECT_EQ(w.coord->stats().ops_timed_out, 1u);
  EXPECT_EQ(w.coord->stats().retries, 2u);
  // Ladder: 5 + 10 + 20 ms of attempt deadlines.
  EXPECT_GE(w.sim.now(), 35 * sim::kMillisecond);
}

}  // namespace
}  // namespace ibwan
