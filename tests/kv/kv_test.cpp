// Single-server RDMA key-value service (moved from ext/kv_pfs_test.cpp
// when the replicated serving suite split the KV tests out).
#include <gtest/gtest.h>

#include "ib/hca.hpp"
#include "kv/kv.hpp"
#include "net/fabric.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan {
namespace {

using namespace ibwan::sim::literals;

struct KvWorld {
  explicit KvWorld(sim::Duration delay = 0)
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        server_hca(fabric.node(0), {}),
        client_hca(fabric.node(1), {}),
        rpc_server(server_hca),
        rpc_client(client_hca, rpc_server),
        server(sim),
        client(rpc_client) {
    fabric.set_wan_delay(delay);
    rpc_server.set_handler(server.handler());
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca server_hca, client_hca;
  rpc::RdmaRpcServer rpc_server;
  rpc::RdmaRpcClient rpc_client;
  kv::KvServer server;
  kv::KvClient client;
};

TEST(Kv, GetReturnsValueSizeAndMissReturnsZero) {
  KvWorld w;
  w.server.preload(5, 4096);
  std::uint64_t hit = 1, miss = 1;
  [](KvWorld& kw, std::uint64_t* h, std::uint64_t* m) -> sim::Task {
    *h = co_await kw.client.get(5);
    *m = co_await kw.client.get(6);
  }(w, &hit, &miss);
  w.sim.run();
  EXPECT_EQ(hit, 4096u);
  EXPECT_EQ(miss, 0u);
  EXPECT_EQ(w.server.stats().gets, 2u);
  EXPECT_EQ(w.server.stats().misses, 1u);
}

TEST(Kv, PutStoresValue) {
  KvWorld w;
  [](KvWorld& kw) -> sim::Task {
    co_await kw.client.put(9, 100'000);
  }(w);
  w.sim.run();
  EXPECT_EQ(w.server.value_size(9), 100'000u);
  EXPECT_EQ(w.server.stats().puts, 1u);
}

TEST(Kv, GetLatencyTracksWanDelay) {
  auto latency_us = [](sim::Duration delay) {
    KvWorld w(delay);
    w.server.preload(1, 128);
    sim::Time t0 = 0, t1 = 0;
    [](KvWorld& kw, sim::Time* a, sim::Time* b) -> sim::Task {
      *a = kw.sim.now();
      co_await kw.client.get(1);
      *b = kw.sim.now();
    }(w, &t0, &t1);
    w.sim.run();
    return sim::to_microseconds(t1 - t0);
  };
  const double lan = latency_us(0);
  const double wan = latency_us(1000_us);
  EXPECT_GT(wan, 2000.0);  // one RPC round trip
  EXPECT_LT(wan, 2100.0);
  EXPECT_LT(lan, 100.0);
}

TEST(Kv, WorkloadRunsAllOps) {
  KvWorld w(100_us);
  for (std::uint64_t k = 0; k < 64; ++k) w.server.preload(k, 4096);
  const kv::KvWorkloadConfig cfg{.clients = 4,
                                 .ops_per_client = 50,
                                 .get_fraction = 0.8,
                                 .value_bytes = 4096,
                                 .key_space = 64};
  const auto r = kv::run_kv_workload(w.sim, w.client, cfg);
  EXPECT_EQ(r.ops, 200u);
  EXPECT_GT(r.kops_per_sec, 0.0);
  EXPECT_GT(r.avg_latency_us, 200.0);  // at least the RTT
  EXPECT_EQ(w.server.stats().gets + w.server.stats().puts, 200u);
}

TEST(Kv, MoreClientsRaiseThroughputUnderDelay) {
  auto kops = [](int clients) {
    KvWorld w(1000_us);
    for (std::uint64_t k = 0; k < 64; ++k) w.server.preload(k, 1024);
    return kv::run_kv_workload(w.sim, w.client,
                               {.clients = clients,
                                .ops_per_client = 40,
                                .value_bytes = 1024,
                                .key_space = 64})
        .kops_per_sec;
  };
  EXPECT_GT(kops(8), 4.0 * kops(1));
}

}  // namespace
}  // namespace ibwan
