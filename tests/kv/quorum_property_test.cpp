// Quorum safety property: with R + W > N, a read that completes after a
// completed write never returns a version older than that write — the
// read quorum must intersect the write quorum. Swept across seeds, site
// counts (2–4 replica sites on a full-mesh WAN graph), and fault plans
// drawn from the scenario fuzzer's generator (Gilbert–Elliott loss,
// jitter, link flaps, brownouts). Ops are allowed to time out or abort
// under faults — the property binds only completed pairs — and every
// issued op must still resolve (clean termination, no hangs).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/scenario_gen.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "kv/replicated.hpp"
#include "net/topology.hpp"
#include "rpc/rpc.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace ibwan {
namespace {

constexpr int kRounds = 16;
constexpr std::uint64_t kKeys = 4;

struct Violation {
  int round;
  std::uint64_t key;
  kv::Version expected;
  kv::Version got;
};

/// One fuzzed case: N replicas on N full-mesh sites, client co-located
/// with replica 0, majority quorums, RC transport, fuzzer fault plan.
void run_case(std::uint64_t seed, int sites, std::vector<Violation>* bad,
              std::uint64_t* unresolved) {
  net::TopologyConfig topo = net::TopologyConfig::full_mesh(sites, 2);
  sim::Rng prng(seed * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(sites));
  const net::FaultPlanConfig plan = check::generate_fault_plan(prng);
  core::Testbed tb(core::TestbedOptions{.topology = &topo,
                                        .wan_delay = 1'000'000,
                                        .seed = seed,
                                        .faults = &plan});
  net::Fabric& fabric = tb.fabric();

  const net::NodeId client_node = tb.node_at(0, 1);
  ib::Hca client_hca(fabric.node(client_node), {});
  std::vector<std::unique_ptr<ib::Hca>> hcas;
  std::vector<std::unique_ptr<rpc::RdmaRpcServer>> servers;
  std::vector<std::unique_ptr<kv::ReplicaServer>> replicas;
  std::vector<std::unique_ptr<rpc::RdmaRpcClient>> clients;
  std::vector<rpc::RpcClient*> channels;
  for (int s = 0; s < sites; ++s) {
    const net::NodeId node = tb.node_at(s);
    hcas.push_back(
        std::make_unique<ib::Hca>(fabric.node(node), ib::HcaConfig{}));
    servers.push_back(std::make_unique<rpc::RdmaRpcServer>(*hcas.back()));
    replicas.push_back(std::make_unique<kv::ReplicaServer>(
        tb.sim_for(node), node));
    servers.back()->set_handler(replicas.back()->handler());
    clients.push_back(
        std::make_unique<rpc::RdmaRpcClient>(client_hca, *servers.back()));
    channels.push_back(clients.back().get());
  }

  kv::QuorumConfig qc;
  qc.read_quorum = sites / 2 + 1;
  qc.write_quorum = sites / 2 + 1;
  qc.op_timeout = 20 * sim::kMillisecond;
  qc.max_retries = 1;
  kv::ReplicatedKv coord(tb.sim_for(client_node), client_node,
                         std::move(channels), qc);

  [](sim::Simulator&, kv::ReplicatedKv& kv,
     std::vector<Violation>* out) -> sim::Task {
    std::map<std::uint64_t, kv::Version> last_write;
    for (int round = 0; round < kRounds; ++round) {
      const std::uint64_t key = static_cast<std::uint64_t>(round) % kKeys;
      const kv::OpResult put = co_await kv.put(key, 1024);
      if (put.status == kv::OpStatus::kCompleted) {
        last_write[key] = put.version;
      }
      const kv::OpResult get = co_await kv.get(key);
      const auto it = last_write.find(key);
      if (get.status == kv::OpStatus::kCompleted && it != last_write.end() &&
          get.version < it->second) {
        out->push_back(Violation{round, key, it->second, get.version});
      }
    }
  }(tb.sim_for(client_node), coord, bad);
  tb.run();

  const kv::ReplicatedKv::Stats& st = coord.stats();
  *unresolved = st.ops_issued -
                (st.ops_completed + st.ops_timed_out + st.ops_aborted);
}

TEST(QuorumProperty, CompletedReadNeverStaleAcrossSeedsSitesAndFaults) {
  for (const std::uint64_t seed : {42ull, 1337ull, 20260809ull}) {
    for (const int sites : {2, 3, 4}) {
      std::vector<Violation> bad;
      std::uint64_t unresolved = ~0ull;
      run_case(seed, sites, &bad, &unresolved);
      const std::string ctx =
          "seed=" + std::to_string(seed) + " sites=" + std::to_string(sites);
      EXPECT_EQ(unresolved, 0u) << ctx << ": ops left unresolved at drain";
      for (const Violation& v : bad) {
        ADD_FAILURE() << ctx << ": stale read at round " << v.round
                      << " key " << v.key << " (expected >= {"
                      << v.expected.stamp << "," << v.expected.writer
                      << "}, got {" << v.got.stamp << "," << v.got.writer
                      << "})";
      }
    }
  }
}

}  // namespace
}  // namespace ibwan
