// N-site topology-graph fabrics (DESIGN.md §15): routing reachability
// over hub/spoke and full-mesh WAN graphs, config validation, and the
// site-parallel partition's byte-identity against the sequential
// engine on a >2-site graph.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {
namespace {

using sim::Simulator;
using sim::Time;

Packet to(NodeId dst, std::uint32_t size) {
  Packet p;
  p.dst = dst;
  p.wire_size = size;
  return p;
}

/// Sends one packet for every ordered (src, dst) pair and returns the
/// per-pair delivery count.
std::map<std::pair<NodeId, NodeId>, int> deliver_all_pairs(Fabric& f) {
  std::map<std::pair<NodeId, NodeId>, int> got;
  const int n = f.node_count();
  for (int d = 0; d < n; ++d) {
    const NodeId dst = static_cast<NodeId>(d);
    f.node(dst).set_receiver([&got, dst](Packet&& p) {
      ++got[{p.src, dst}];
    });
  }
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      f.node(static_cast<NodeId>(s)).send(to(static_cast<NodeId>(d), 256));
    }
  }
  f.run_all();
  return got;
}

TEST(Topology, HubSpokeRoutesReachEveryPair) {
  Simulator sim;
  TopologyConfig topo = TopologyConfig::hub_spoke(/*spokes=*/3,
                                                  /*nodes_per_site=*/2);
  ASSERT_EQ(validate_topology(topo), "");
  Fabric f(sim, topo);
  EXPECT_EQ(f.site_count(), 4);
  EXPECT_EQ(f.node_count(), 8);
  EXPECT_EQ(f.wan_hops(0, 1), 1);  // hub to spoke
  EXPECT_EQ(f.wan_hops(1, 3), 2);  // spoke to spoke transits the hub
  EXPECT_EQ(f.wan_hops(2, 2), 0);

  const auto got = deliver_all_pairs(f);
  for (int s = 0; s < f.node_count(); ++s) {
    for (int d = 0; d < f.node_count(); ++d) {
      if (s == d) continue;
      EXPECT_EQ((got.at({static_cast<NodeId>(s), static_cast<NodeId>(d)})),
                1)
          << "pair " << s << "->" << d;
    }
  }
  for (int site = 0; site < f.site_count(); ++site) {
    EXPECT_EQ(f.site_switch(site).drops_no_route(), 0u);
  }
}

TEST(Topology, FullMeshRoutesDirectly) {
  Simulator sim;
  TopologyConfig topo = TopologyConfig::full_mesh(/*n_sites=*/4,
                                                  /*nodes_per_site=*/1);
  ASSERT_EQ(validate_topology(topo), "");
  Fabric f(sim, topo);
  EXPECT_EQ(f.wan_edge_count(), 6);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(f.wan_hops(a, b), a == b ? 0 : 1);
    }
  }
  const auto got = deliver_all_pairs(f);
  EXPECT_EQ(got.size(), 12u);  // every ordered pair, exactly once
  for (const auto& [pair, count] : got) EXPECT_EQ(count, 1);
}

TEST(Topology, ValidateRejectsMalformedGraphs) {
  EXPECT_NE(validate_topology(TopologyConfig{}), "");  // no sites

  TopologyConfig self_loop = TopologyConfig::hub_spoke(2, 1);
  self_loop.wan.push_back(WanEdgeConfig{.site_a = 1, .site_b = 1});
  EXPECT_NE(validate_topology(self_loop), "");

  TopologyConfig dangling = TopologyConfig::hub_spoke(2, 1);
  dangling.wan.push_back(WanEdgeConfig{.site_a = 0, .site_b = 9});
  EXPECT_NE(validate_topology(dangling), "");

  TopologyConfig empty_site = TopologyConfig::hub_spoke(2, 1);
  empty_site.sites[1].nodes = 0;
  EXPECT_NE(validate_topology(empty_site), "");
}

/// Per-destination delivery logs from a two-wave all-pairs exchange on
/// a hub/spoke graph: first wave at t=0 from every node (maximal
/// cross-edge ties at the hub), second wave staggered per source. Logs
/// are per destination node — each is only ever written by its own
/// site's worker thread, and comparing them per destination sidesteps
/// the (physically meaningless) cross-site interleaving of a global
/// log.
std::vector<std::vector<std::pair<Time, NodeId>>> run_hub_spoke_log(
    sim::SiteEngine& engine) {
  TopologyConfig topo = TopologyConfig::hub_spoke(/*spokes=*/3,
                                                  /*nodes_per_site=*/1);
  Fabric f(engine, topo);
  engine.seed(42);
  f.set_wan_delay(1'000'000);
  const int n = f.node_count();
  std::vector<std::vector<std::pair<Time, NodeId>>> logs(
      static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    const NodeId dst = static_cast<NodeId>(d);
    Simulator& dsim = f.sim_of_node(dst);
    auto* log = &logs[static_cast<std::size_t>(d)];
    f.node(dst).set_receiver([log, &dsim](Packet&& p) {
      log->emplace_back(dsim.now(), p.src);
    });
  }
  for (int s = 0; s < n; ++s) {
    const NodeId src = static_cast<NodeId>(s);
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      f.node(src).send(to(static_cast<NodeId>(d), 512));
      f.sim_of_node(src).schedule(
          50'000 * (s + 1), [&f, src, d] {
            f.node(src).send(to(static_cast<NodeId>(d), 512));
          });
    }
  }
  f.run_all();
  return logs;
}

TEST(Topology, SiteParallelMatchesSequentialOnHubSpoke) {
  sim::SiteEngine seq_engine(1);
  const auto seq = run_hub_spoke_log(seq_engine);
  std::size_t total = 0;
  for (const auto& log : seq) total += log.size();
  EXPECT_EQ(total, 24u);  // 4 nodes, all pairs, two waves

  sim::SiteEngine par_engine(4, 2);
  ASSERT_TRUE(par_engine.parallel());
  const auto par = run_hub_spoke_log(par_engine);
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace ibwan::net
