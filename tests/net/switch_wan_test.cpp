// Switch routing and Longbow behaviour edge cases.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace ibwan::sim::literals;

TEST(Switch, DropsUnroutableWithoutDefault) {
  Simulator sim;
  Switch sw(sim, "sw", 100);
  Link out(sim, {.bytes_per_ns = 1.0}, "out");
  int delivered = 0;
  out.set_sink([&](Packet&&) { ++delivered; });
  const int port = sw.add_port(&out);
  sw.set_route(7, port);
  Packet known;
  known.dst = 7;
  known.wire_size = 10;
  sw.receive(std::move(known));
  Packet unknown;
  unknown.dst = 8;
  unknown.wire_size = 10;
  sw.receive(std::move(unknown));
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sw.forwarded(), 1u);
}

TEST(Switch, HopLatencyAppliesPerPacket) {
  Simulator sim;
  Switch sw(sim, "sw", 250);
  Link out(sim, {.bytes_per_ns = 1.0}, "out");
  Time arrival = 0;
  out.set_sink([&](Packet&&) { arrival = sim.now(); });
  sw.set_default_route(sw.add_port(&out));
  Packet p;
  p.dst = 1;
  p.wire_size = 100;
  sw.receive(std::move(p));
  sim.run();
  EXPECT_EQ(arrival, 250u + 100u);  // hop latency + serialization
}

TEST(Longbow, DelayChangeAppliesToSubsequentPackets) {
  Simulator sim;
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  std::vector<Time> arrivals;
  f.node(1).set_receiver([&](Packet&&) { arrivals.push_back(sim.now()); });

  Packet p1;
  p1.dst = 1;
  p1.wire_size = 100;
  f.node(0).send(std::move(p1));
  sim.run();

  f.set_wan_delay(500_us);
  const Time t0 = sim.now();
  Packet p2;
  p2.dst = 1;
  p2.wire_size = 100;
  f.node(0).send(std::move(p2));
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  const Time base = arrivals[0];
  EXPECT_NEAR(static_cast<double>(arrivals[1] - t0),
              static_cast<double>(base + 500_us), 1000.0);
}

TEST(Longbow, WanStatsCountPerDirection) {
  Simulator sim;
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  f.node(0).set_receiver([](Packet&&) {});
  f.node(1).set_receiver([](Packet&&) {});
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.dst = 1;
    p.wire_size = 100;
    f.node(0).send(std::move(p));
  }
  Packet back;
  back.dst = 0;
  back.wire_size = 50;
  f.node(1).send(std::move(back));
  sim.run();
  EXPECT_EQ(f.longbows()->wan_stats_a_to_b().packets_sent, 3u);
  EXPECT_EQ(f.longbows()->wan_stats_b_to_a().packets_sent, 1u);
  EXPECT_EQ(f.longbows()->wan_stats_a_to_b().bytes_sent, 300u);
}

TEST(Longbow, ControlPacketsBypassDataQueue) {
  // A control packet enqueued behind a deep data backlog on the WAN
  // link must serialize ahead of the remaining data.
  Simulator sim;
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  std::vector<std::pair<bool, Time>> arrivals;
  f.node(1).set_receiver([&](Packet&& p) {
    arrivals.emplace_back(p.control, sim.now());
  });
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.dst = 1;
    p.wire_size = 2048;
    f.node(0).send(std::move(p));
  }
  Packet ctrl;
  ctrl.dst = 1;
  ctrl.wire_size = 30;
  ctrl.control = true;
  f.node(0).send(std::move(ctrl));
  sim.run();
  // The control packet must not be last.
  ASSERT_EQ(arrivals.size(), 21u);
  int ctrl_index = -1;
  for (int i = 0; i < 21; ++i) {
    if (arrivals[i].first) ctrl_index = i;
  }
  ASSERT_GE(ctrl_index, 0);
  EXPECT_LT(ctrl_index, 20);
}

TEST(Fabric, AsymmetricClusterSizes) {
  Simulator sim;
  Fabric f(sim, {.nodes_a = 5, .nodes_b = 2});
  EXPECT_EQ(f.node_count(), 7);
  int got = 0;
  f.node(6).set_receiver([&](Packet&&) { ++got; });
  for (NodeId src : {0u, 4u, 5u}) {
    Packet p;
    p.dst = 6;
    p.wire_size = 64;
    f.node(src).send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(got, 3);
}

}  // namespace
}  // namespace ibwan::net
