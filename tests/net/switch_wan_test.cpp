// Switch routing and Longbow behaviour edge cases.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace ibwan::sim::literals;

TEST(Switch, DropsUnroutableWithoutDefault) {
  Simulator sim;
  Switch sw(sim, "sw", 100);
  Link out(sim, {.bytes_per_ns = 1.0}, "out");
  int delivered = 0;
  out.set_sink([&](Packet&&) { ++delivered; });
  const int port = sw.add_port(&out);
  sw.set_route(7, port);
  Packet known;
  known.dst = 7;
  known.wire_size = 10;
  sw.receive(std::move(known));
  Packet unknown;
  unknown.dst = 8;
  unknown.wire_size = 10;
  sw.receive(std::move(unknown));
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sw.forwarded(), 1u);
}

TEST(Switch, RouteHitBeatsDefaultRoute) {
  Simulator sim;
  Switch sw(sim, "sw", 100);
  Link routed(sim, {.bytes_per_ns = 1.0}, "routed");
  Link fallback(sim, {.bytes_per_ns = 1.0}, "fallback");
  int via_routed = 0;
  int via_fallback = 0;
  routed.set_sink([&](Packet&&) { ++via_routed; });
  fallback.set_sink([&](Packet&&) { ++via_fallback; });
  sw.set_route(3, sw.add_port(&routed));
  sw.set_default_route(sw.add_port(&fallback));
  Packet hit;
  hit.dst = 3;
  hit.wire_size = 10;
  sw.receive(std::move(hit));
  Packet miss;
  miss.dst = 9;
  miss.wire_size = 10;
  sw.receive(std::move(miss));
  sim.run();
  EXPECT_EQ(via_routed, 1);
  EXPECT_EQ(via_fallback, 1);
  EXPECT_EQ(sw.forwarded(), 2u);
  EXPECT_EQ(sw.drops_no_route(), 0u);
}

TEST(Switch, NoRouteDropCounterStaysExactPastWarnLimit) {
  Simulator sim;
  Switch sw(sim, "sw", 100);
  Link out(sim, {.bytes_per_ns = 1.0}, "out");
  out.set_sink([](Packet&&) {});
  sw.set_route(1, sw.add_port(&out));
  // Far past the rate-limited warning window: the counter must stay
  // exact even once per-drop logging is suppressed.
  constexpr int kDrops = 100;
  for (int i = 0; i < kDrops; ++i) {
    Packet p;
    p.dst = 42;
    p.wire_size = 10;
    sw.receive(std::move(p));
  }
  sim.run();
  EXPECT_EQ(sw.drops_no_route(), static_cast<std::uint64_t>(kDrops));
  EXPECT_EQ(sw.forwarded(), 0u);
}

TEST(Switch, OutOfRangePortDropsInsteadOfForwarding) {
  Simulator sim;
  Switch sw(sim, "sw", 100);
  Link out(sim, {.bytes_per_ns = 1.0}, "out");
  int delivered = 0;
  out.set_sink([&](Packet&&) { ++delivered; });
  sw.add_port(&out);
  sw.set_route(5, 7);          // beyond the one registered port
  sw.set_default_route(-3);    // nonsense fallback
  Packet p;
  p.dst = 5;
  p.wire_size = 10;
  sw.receive(std::move(p));
  Packet q;
  q.dst = 6;
  q.wire_size = 10;
  sw.receive(std::move(q));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(sw.drops_no_route(), 2u);
}

TEST(Switch, WanIngressTieBreaksByEdgeOrder) {
  Simulator sim;
  Switch sw(sim, "sw", 100);
  Link out(sim, {.bytes_per_ns = 1.0}, "out");
  std::vector<std::uint32_t> order;
  out.set_sink([&](Packet&& p) { order.push_back(p.src); });
  sw.set_default_route(sw.add_port(&out));
  // Two same-instant WAN arrivals, enqueued in descending edge order:
  // the demux must still forward edge 0 first, so the shared egress
  // link serializes in topology order rather than arrival-call order.
  Packet from_edge2;
  from_edge2.src = 2;
  from_edge2.dst = 1;
  from_edge2.wire_size = 10;
  sw.receive_wan(2, std::move(from_edge2));
  Packet from_edge0;
  from_edge0.src = 0;
  from_edge0.dst = 1;
  from_edge0.wire_size = 10;
  sw.receive_wan(0, std::move(from_edge0));
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(sw.forwarded(), 2u);
}

TEST(Switch, HopLatencyAppliesPerPacket) {
  Simulator sim;
  Switch sw(sim, "sw", 250);
  Link out(sim, {.bytes_per_ns = 1.0}, "out");
  Time arrival = 0;
  out.set_sink([&](Packet&&) { arrival = sim.now(); });
  sw.set_default_route(sw.add_port(&out));
  Packet p;
  p.dst = 1;
  p.wire_size = 100;
  sw.receive(std::move(p));
  sim.run();
  EXPECT_EQ(arrival, 250u + 100u);  // hop latency + serialization
}

TEST(Longbow, DelayChangeAppliesToSubsequentPackets) {
  Simulator sim;
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  std::vector<Time> arrivals;
  f.node(1).set_receiver([&](Packet&&) { arrivals.push_back(sim.now()); });

  Packet p1;
  p1.dst = 1;
  p1.wire_size = 100;
  f.node(0).send(std::move(p1));
  sim.run();

  f.set_wan_delay(500_us);
  const Time t0 = sim.now();
  Packet p2;
  p2.dst = 1;
  p2.wire_size = 100;
  f.node(0).send(std::move(p2));
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  const Time base = arrivals[0];
  EXPECT_NEAR(static_cast<double>(arrivals[1] - t0),
              static_cast<double>(base + 500_us), 1000.0);
}

TEST(Longbow, WanStatsCountPerDirection) {
  Simulator sim;
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  f.node(0).set_receiver([](Packet&&) {});
  f.node(1).set_receiver([](Packet&&) {});
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.dst = 1;
    p.wire_size = 100;
    f.node(0).send(std::move(p));
  }
  Packet back;
  back.dst = 0;
  back.wire_size = 50;
  f.node(1).send(std::move(back));
  sim.run();
  EXPECT_EQ(f.longbows()->wan_stats_a_to_b().packets_sent, 3u);
  EXPECT_EQ(f.longbows()->wan_stats_b_to_a().packets_sent, 1u);
  EXPECT_EQ(f.longbows()->wan_stats_a_to_b().bytes_sent, 300u);
}

TEST(Longbow, ControlPacketsBypassDataQueue) {
  // A control packet enqueued behind a deep data backlog on the WAN
  // link must serialize ahead of the remaining data.
  Simulator sim;
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  std::vector<std::pair<bool, Time>> arrivals;
  f.node(1).set_receiver([&](Packet&& p) {
    arrivals.emplace_back(p.control, sim.now());
  });
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.dst = 1;
    p.wire_size = 2048;
    f.node(0).send(std::move(p));
  }
  Packet ctrl;
  ctrl.dst = 1;
  ctrl.wire_size = 30;
  ctrl.control = true;
  f.node(0).send(std::move(ctrl));
  sim.run();
  // The control packet must not be last.
  ASSERT_EQ(arrivals.size(), 21u);
  int ctrl_index = -1;
  for (int i = 0; i < 21; ++i) {
    if (arrivals[i].first) ctrl_index = i;
  }
  ASSERT_GE(ctrl_index, 0);
  EXPECT_LT(ctrl_index, 20);
}

TEST(Fabric, AsymmetricClusterSizes) {
  Simulator sim;
  Fabric f(sim, {.nodes_a = 5, .nodes_b = 2});
  EXPECT_EQ(f.node_count(), 7);
  int got = 0;
  f.node(6).set_receiver([&](Packet&&) { ++got; });
  for (NodeId src : {0u, 4u, 5u}) {
    Packet p;
    p.dst = 6;
    p.wire_size = 64;
    f.node(src).send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(got, 3);
}

}  // namespace
}  // namespace ibwan::net
