// Property tests for the FaultPlan JSON parser (src/net/faults.cpp):
// every malformed, truncated, duplicated, deeply nested, or
// out-of-range input must produce a clean error — never a crash, hang,
// or silently wrong plan. This file is built twice: into net_tests and
// into faults_parser_asan_tests (-fsanitize=address) so overreads in
// the hand-rolled scanner cannot land unnoticed.
#include <gtest/gtest.h>

#include <string>

#include "net/faults.hpp"
#include "sim/rng.hpp"

namespace ibwan::net {
namespace {

bool parses(const std::string& text, FaultPlanConfig* out = nullptr,
            std::string* err = nullptr) {
  FaultPlanConfig local;
  std::string local_err;
  return parse_fault_plan(text, out != nullptr ? out : &local,
                          err != nullptr ? err : &local_err);
}

// --------------------------------------------------------------------------
// Well-formed plans.
// --------------------------------------------------------------------------

TEST(FaultsParser, AcceptsFullPlan) {
  FaultPlanConfig cfg;
  std::string err;
  ASSERT_TRUE(parses(R"({
    "gilbert_elliott": {"p_good_to_bad": 0.01, "p_bad_to_good": 0.2,
                        "loss_good": 0.0, "loss_bad": 0.25},
    "jitter_max_us": 15,
    "flaps": [{"down_at_us": 1000, "down_for_us": 200}],
    "brownouts": [{"at_us": 5000, "for_us": 100, "buffer_bytes": 8192}]
  })",
                     &cfg, &err))
      << err;
  EXPECT_TRUE(cfg.ge.enabled());
  EXPECT_EQ(cfg.jitter_max, sim::Duration{15'000});
  ASSERT_EQ(cfg.flaps.size(), 1u);
  EXPECT_EQ(cfg.flaps[0].down_at, sim::Duration{1'000'000});
  ASSERT_EQ(cfg.brownouts.size(), 1u);
  EXPECT_EQ(cfg.brownouts[0].buffer_bytes, 8192u);
}

TEST(FaultsParser, AcceptsEmptyObjectAsInertPlan) {
  FaultPlanConfig cfg;
  ASSERT_TRUE(parses("{}", &cfg));
  EXPECT_FALSE(cfg.any());
}

// --------------------------------------------------------------------------
// Malformed and truncated inputs: clean errors, no crashes.
// --------------------------------------------------------------------------

TEST(FaultsParser, RejectsMalformedInputsWithNonEmptyError) {
  const char* bad[] = {
      "",
      "   ",
      "{",
      "}",
      "[]",
      "42",
      "\"plan\"",
      "null",
      "{\"jitter_max_us\":}",
      "{\"jitter_max_us\": 5,}",
      "{\"jitter_max_us\" 5}",
      "{jitter_max_us: 5}",
      "{\"jitter_max_us\": 5} trailing",
      "{\"jitter_max_us\": --5}",
      "{\"jitter_max_us\": 1e}",
      "{\"jitter_max_us\": \"five\"}",
      "{\"flaps\": {}}",
      "{\"flaps\": [5]}",
      "{\"flaps\": [{\"down_at_us\": 1}",
      "{\"gilbert_elliott\": []}",
      "{\"gilbert_elliott\": {\"p_good_to_bad\": true}}",
      "{\"unknown_knob\": 1}",
      "{\"gilbert_elliott\": {\"typo\": 1}}",
      "{\"jitter\\x\": 1}",
      "{\"a\\q\": 1}",
      "{\"unterminated",
  };
  for (const char* text : bad) {
    FaultPlanConfig cfg;
    std::string err;
    EXPECT_FALSE(parses(text, &cfg, &err)) << "input: " << text;
    EXPECT_FALSE(err.empty()) << "input: " << text;
  }
}

TEST(FaultsParser, EveryPrefixOfAValidPlanFailsCleanly) {
  const std::string full = R"({"gilbert_elliott": {"p_good_to_bad": 0.01},
    "flaps": [{"down_at_us": 10, "down_for_us": 5}], "jitter_max_us": 2})";
  for (std::size_t n = 0; n < full.size(); ++n) {
    FaultPlanConfig cfg;
    std::string err;
    // No truncation of a complete document is itself complete.
    EXPECT_FALSE(parses(full.substr(0, n), &cfg, &err)) << "prefix len " << n;
  }
}

TEST(FaultsParser, SeededMutationSweepNeverCrashes) {
  // Deterministic corruption sweep: flip/insert/delete one byte at an
  // Rng-chosen position. Outcomes may be accept or reject; the property
  // under test (especially under ASan) is "no crash, no overread".
  const std::string base = R"({"gilbert_elliott": {"p_good_to_bad": 0.01,
    "p_bad_to_good": 0.2, "loss_bad": 0.3}, "jitter_max_us": 7,
    "brownouts": [{"at_us": 1, "for_us": 2, "buffer_bytes": 3}]})";
  sim::Rng rng(20260806);
  for (int i = 0; i < 2000; ++i) {
    std::string text = base;
    const std::size_t pos = rng.uniform(text.size());
    switch (rng.uniform(3u)) {
      case 0:
        text[pos] = static_cast<char>(rng.uniform(256u));
        break;
      case 1:
        text.insert(pos, 1, static_cast<char>(rng.uniform(256u)));
        break;
      default:
        text.erase(pos, 1);
        break;
    }
    FaultPlanConfig cfg;
    std::string err;
    parses(text, &cfg, &err);  // must simply return
  }
  SUCCEED();
}

// --------------------------------------------------------------------------
// Duplicate keys and deep nesting (the bugs this suite was built for).
// --------------------------------------------------------------------------

TEST(FaultsParser, RejectsDuplicateKeys) {
  std::string err;
  FaultPlanConfig cfg;
  EXPECT_FALSE(parses(R"({"jitter_max_us": 1, "jitter_max_us": 2})", &cfg,
                      &err));
  EXPECT_NE(err.find("duplicate key"), std::string::npos) << err;
  EXPECT_FALSE(parses(
      R"({"gilbert_elliott": {"loss_bad": 0.1, "loss_bad": 0.2}})", &cfg,
      &err));
}

TEST(FaultsParser, RejectsPathologicalNestingWithoutStackOverflow) {
  // 100k unclosed arrays: without the depth limit this recursed once
  // per '[' and took the process down with it.
  std::string arrays = "{\"flaps\": ";
  arrays.append(100'000, '[');
  FaultPlanConfig cfg;
  std::string err;
  EXPECT_FALSE(parses(arrays, &cfg, &err));
  EXPECT_NE(err.find("nesting"), std::string::npos) << err;

  // Object nesting recurses through keys rather than bare braces.
  std::string objects;
  for (int i = 0; i < 200; ++i) objects += "{\"k\": ";
  EXPECT_FALSE(parses(objects, &cfg, &err));
  EXPECT_NE(err.find("nesting"), std::string::npos) << err;

  // ...and a legal nesting depth still parses.
  EXPECT_TRUE(parses(R"({"flaps": []})", &cfg, &err)) << err;
}

// --------------------------------------------------------------------------
// Range validation: values that used to cast UB-style into Durations.
// --------------------------------------------------------------------------

TEST(FaultsParser, RejectsOutOfRangeValues) {
  const char* bad[] = {
      R"({"gilbert_elliott": {"p_good_to_bad": 1.5}})",
      R"({"gilbert_elliott": {"loss_bad": -0.1}})",
      R"({"gilbert_elliott": {"loss_good": 1e400}})",  // inf after strtod
      R"({"jitter_max_us": -1})",
      R"({"jitter_max_us": 1e300})",
      R"({"flaps": [{"down_at_us": -5, "down_for_us": 1}]})",
      R"({"flaps": [{"down_at_us": 1, "down_for_us": 1e13}]})",
      R"({"brownouts": [{"at_us": 1, "for_us": 1, "buffer_bytes": -1}]})",
      R"({"brownouts": [{"at_us": 1, "for_us": 1, "buffer_bytes": 1e19}]})",
  };
  for (const char* text : bad) {
    FaultPlanConfig cfg;
    std::string err;
    EXPECT_FALSE(parses(text, &cfg, &err)) << "input: " << text;
    EXPECT_FALSE(err.empty()) << "input: " << text;
  }
  // Boundary values stay legal.
  FaultPlanConfig cfg;
  std::string err;
  EXPECT_TRUE(parses(
      R"({"gilbert_elliott": {"p_good_to_bad": 1.0, "loss_bad": 0.0}})",
      &cfg, &err))
      << err;
  EXPECT_TRUE(parses(R"({"jitter_max_us": 0})", &cfg, &err)) << err;
}

TEST(FaultsParser, LoadRejectsMissingFile) {
  FaultPlanConfig cfg;
  std::string err;
  EXPECT_FALSE(load_fault_plan("/nonexistent/plan.json", &cfg, &err));
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace ibwan::net
