#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace ibwan::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace ibwan::sim::literals;

Packet to(NodeId dst, std::uint32_t size) {
  Packet p;
  p.dst = dst;
  p.wire_size = size;
  return p;
}

class FabricTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(FabricTest, NodeIdsPartitionClusters) {
  Fabric f(sim, {.nodes_a = 3, .nodes_b = 2});
  EXPECT_EQ(f.node_count(), 5);
  EXPECT_EQ(f.node_id(Cluster::kA, 0), 0u);
  EXPECT_EQ(f.node_id(Cluster::kA, 2), 2u);
  EXPECT_EQ(f.node_id(Cluster::kB, 0), 3u);
  EXPECT_EQ(f.node_id(Cluster::kB, 1), 4u);
  EXPECT_EQ(f.cluster_of(2), Cluster::kA);
  EXPECT_EQ(f.cluster_of(3), Cluster::kB);
  EXPECT_TRUE(f.crosses_wan(0, 3));
  EXPECT_FALSE(f.crosses_wan(0, 2));
}

TEST_F(FabricTest, IntraClusterDelivery) {
  Fabric f(sim, {.nodes_a = 2, .nodes_b = 1});
  bool got = false;
  f.node(1).set_receiver([&](Packet&& p) {
    got = true;
    EXPECT_EQ(p.src, 0u);
    EXPECT_EQ(p.dst, 1u);
  });
  f.node(0).send(to(1, 100));
  sim.run();
  EXPECT_TRUE(got);
}

TEST_F(FabricTest, InterClusterDeliveryCrossesLongbows) {
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  bool got = false;
  f.node(1).set_receiver([&](Packet&&) { got = true; });
  f.node(0).send(to(1, 100));
  sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(f.longbows()->wan_stats_a_to_b().packets_sent, 1u);
  EXPECT_EQ(f.longbows()->wan_stats_b_to_a().packets_sent, 0u);
}

TEST_F(FabricTest, IntraClusterTrafficStaysOffWan) {
  Fabric f(sim, {.nodes_a = 2, .nodes_b = 2});
  int got = 0;
  f.node(1).set_receiver([&](Packet&&) { ++got; });
  for (int i = 0; i < 5; ++i) f.node(0).send(to(1, 64));
  sim.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(f.longbows()->wan_stats_a_to_b().packets_sent, 0u);
}

TEST_F(FabricTest, WanDelayShiftsInterClusterLatencyOnly) {
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  Time base = 0;
  f.node(1).set_receiver([&](Packet&&) { base = sim.now(); });
  f.node(0).send(to(1, 100));
  sim.run();

  Simulator sim2;
  Fabric f2(sim2, {.nodes_a = 1, .nodes_b = 1});
  f2.set_wan_delay(1000_us);
  Time delayed = 0;
  f2.node(1).set_receiver([&](Packet&&) { delayed = sim2.now(); });
  f2.node(0).send(to(1, 100));
  sim2.run();

  EXPECT_EQ(delayed - base, 1000_us);
}

TEST_F(FabricTest, WanDelayDoesNotAffectIntraCluster) {
  Fabric f(sim, {.nodes_a = 2, .nodes_b = 1});
  f.set_wan_delay(1000_us);
  Time arrival = 0;
  f.node(1).set_receiver([&](Packet&&) { arrival = sim.now(); });
  f.node(0).send(to(1, 100));
  sim.run();
  EXPECT_LT(arrival, 10_us);
}

TEST_F(FabricTest, BackToBackIsLowerLatencyThanThroughLongbows) {
  FabricConfig b2b{.nodes_a = 1, .nodes_b = 1, .back_to_back = true};
  Fabric direct(sim, b2b);
  Time t_direct = 0;
  direct.node(1).set_receiver([&](Packet&&) { t_direct = sim.now(); });
  direct.node(0).send(to(1, 100));
  sim.run();

  Simulator sim2;
  Fabric routed(sim2, {.nodes_a = 1, .nodes_b = 1});
  Time t_routed = 0;
  routed.node(1).set_receiver([&](Packet&&) { t_routed = sim2.now(); });
  routed.node(0).send(to(1, 100));
  sim2.run();

  EXPECT_LT(t_direct, t_routed);
  // The Longbow pair should add roughly 5 us (paper, Section 3.2.1).
  const double added_us = sim::to_microseconds(t_routed - t_direct);
  EXPECT_GT(added_us, 3.0);
  EXPECT_LT(added_us, 7.0);
}

TEST_F(FabricTest, WanRateIsSdrBottleneck) {
  // Saturating burst across the WAN arrives paced at SDR (1 B/ns), even
  // though LAN links run at DDR (2 B/ns).
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  std::vector<Time> arrivals;
  f.node(1).set_receiver([&](Packet&&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 20; ++i) f.node(0).send(to(1, 2048));
  sim.run();
  ASSERT_EQ(arrivals.size(), 20u);
  // Steady-state inter-arrival equals WAN serialization of 2048 B at 1 B/ns.
  for (std::size_t i = 10; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], 2048u);
  }
}

TEST_F(FabricTest, BidirectionalWanTrafficDoesNotInterfere) {
  // Separate fibers per direction: full rate both ways at once.
  Fabric f(sim, {.nodes_a = 1, .nodes_b = 1});
  int got_a = 0, got_b = 0;
  f.node(0).set_receiver([&](Packet&&) { ++got_a; });
  f.node(1).set_receiver([&](Packet&&) { ++got_b; });
  for (int i = 0; i < 10; ++i) {
    f.node(0).send(to(1, 2048));
    f.node(1).send(to(0, 2048));
  }
  sim.run();
  const Time t_both = sim.now();
  EXPECT_EQ(got_a, 10);
  EXPECT_EQ(got_b, 10);

  Simulator sim2;
  Fabric f2(sim2, {.nodes_a = 1, .nodes_b = 1});
  int got = 0;
  f2.node(1).set_receiver([&](Packet&&) { ++got; });
  for (int i = 0; i < 10; ++i) f2.node(0).send(to(1, 2048));
  sim2.run();
  EXPECT_EQ(got, 10);
  // One-way total time should be (almost) the same as two-way.
  EXPECT_NEAR(static_cast<double>(t_both), static_cast<double>(sim2.now()),
              static_cast<double>(t_both) * 0.01);
}

}  // namespace
}  // namespace ibwan::net
