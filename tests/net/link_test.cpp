#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace ibwan::net {
namespace {

using sim::Simulator;
using sim::Time;

Packet make_packet(std::uint32_t size, std::uint64_t id = 0) {
  Packet p;
  p.wire_size = size;
  p.id = id;
  return p;
}

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 2.0, .propagation = 100}, "l");
  Time arrival = 0;
  link.set_sink([&](Packet&&) { arrival = sim.now(); });
  link.send(make_packet(1000));
  sim.run();
  // 1000 B at 2 B/ns = 500 ns serialize + 100 ns propagation.
  EXPECT_EQ(arrival, 600u);
}

TEST(Link, BackToBackPacketsQueueFifo) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0}, "l");
  std::vector<std::pair<std::uint64_t, Time>> got;
  link.set_sink([&](Packet&& p) { got.emplace_back(p.id, sim.now()); });
  link.send(make_packet(100, 1));
  link.send(make_packet(100, 2));
  link.send(make_packet(100, 3));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<std::uint64_t, Time>{1, 100}));
  EXPECT_EQ(got[1], (std::pair<std::uint64_t, Time>{2, 200}));
  EXPECT_EQ(got[2], (std::pair<std::uint64_t, Time>{3, 300}));
}

TEST(Link, IdleGapRestartsSerializationClock) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 10}, "l");
  std::vector<Time> arrivals;
  link.set_sink([&](Packet&&) { arrivals.push_back(sim.now()); });
  link.send(make_packet(50));
  sim.run();
  sim.run_until(1000);
  link.send(make_packet(50));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 60u);
  EXPECT_EQ(arrivals[1], 1060u);
}

TEST(Link, ExtraDelayAddsToPropagation) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 100}, "l");
  Time arrival = 0;
  link.set_sink([&](Packet&&) { arrival = sim.now(); });
  link.set_extra_delay(5000);
  link.send(make_packet(10));
  sim.run();
  EXPECT_EQ(arrival, 10u + 100u + 5000u);
}

TEST(Link, ExtraDelayDoesNotAffectThroughput) {
  // The delay knob emulates distance: it shifts arrivals but must not
  // change the serialization rate (pipe keeps streaming).
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0}, "l");
  link.set_extra_delay(1'000'000);
  std::vector<Time> arrivals;
  link.set_sink([&](Packet&&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 10; ++i) link.send(make_packet(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], 1000u);  // line rate
  }
}

TEST(Link, OnSerializedFiresAtWireCompletion) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 500}, "l");
  Time serialized_at = 0, delivered_at = 0;
  link.set_sink([&](Packet&&) { delivered_at = sim.now(); });
  Packet p = make_packet(100);
  p.on_serialized = [&] { serialized_at = sim.now(); };
  link.send(std::move(p));
  sim.run();
  EXPECT_EQ(serialized_at, 100u);
  EXPECT_EQ(delivered_at, 600u);
}

TEST(Link, FiniteBufferDropsOverflow) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0, .buffer_bytes = 250},
            "l");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  EXPECT_TRUE(link.send(make_packet(100)));
  EXPECT_TRUE(link.send(make_packet(100)));
  EXPECT_FALSE(link.send(make_packet(100)));  // 300 > 250
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.stats().packets_dropped_buffer, 1u);
}

TEST(Link, BufferDrainsAsPacketsSerialize) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0, .buffer_bytes = 150},
            "l");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  EXPECT_TRUE(link.send(make_packet(100)));
  sim.run_until(100);  // first packet fully serialized
  EXPECT_TRUE(link.send(make_packet(100)));
  sim.run();
  EXPECT_EQ(delivered, 2);
}

TEST(Link, LossRateDropsSomePackets) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0, .loss_rate = 0.5},
            "l");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  for (int i = 0; i < 1000; ++i) link.send(make_packet(10));
  sim.run();
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
  EXPECT_EQ(link.stats().packets_dropped_loss,
            1000u - static_cast<unsigned>(delivered));
}

TEST(Link, StatsCountPacketsAndBytes) {
  Simulator sim;
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0}, "l");
  link.set_sink([](Packet&&) {});
  link.send(make_packet(100));
  link.send(make_packet(200));
  sim.run();
  EXPECT_EQ(link.stats().packets_sent, 2u);
  EXPECT_EQ(link.stats().bytes_sent, 300u);
}

}  // namespace
}  // namespace ibwan::net
