#include "net/faults.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/wan.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {
namespace {

using sim::Simulator;
using sim::Time;

Packet make_packet(std::uint32_t size, std::uint64_t id = 0) {
  Packet p;
  p.wire_size = size;
  p.id = id;
  return p;
}

/// After the sim drains, every byte the link accepted must be accounted
/// for: delivered or attributed to a drop bucket.
void expect_bytes_conserved(const Link& link) {
  const Link::Stats& s = link.stats();
  EXPECT_EQ(s.bytes_sent, s.bytes_delivered + s.bytes_dropped)
      << link.name() << ": bytes leaked";
  EXPECT_EQ(s.packets_sent, s.packets_delivered + s.packets_dropped_loss +
                                s.packets_dropped_fault +
                                s.packets_dropped_down)
      << link.name() << ": packets leaked";
}

// ---------------------------------------------------------------------------
// JSON plan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlanJson, ParsesFullPlan) {
  const std::string text = R"({
    "gilbert_elliott": { "p_good_to_bad": 0.01, "p_bad_to_good": 0.2,
                         "loss_good": 0.001, "loss_bad": 0.3 },
    "jitter_max_us": 20,
    "flaps":     [ { "down_at_us": 5000, "down_for_us": 800 } ],
    "brownouts": [ { "at_us": 20000, "for_us": 5000,
                     "buffer_bytes": 16384 } ]
  })";
  FaultPlanConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_fault_plan(text, &cfg, &err)) << err;
  EXPECT_TRUE(cfg.any());
  EXPECT_DOUBLE_EQ(cfg.ge.p_good_to_bad, 0.01);
  EXPECT_DOUBLE_EQ(cfg.ge.p_bad_to_good, 0.2);
  EXPECT_DOUBLE_EQ(cfg.ge.loss_good, 0.001);
  EXPECT_DOUBLE_EQ(cfg.ge.loss_bad, 0.3);
  EXPECT_EQ(cfg.jitter_max, 20 * sim::kMicrosecond);
  ASSERT_EQ(cfg.flaps.size(), 1u);
  EXPECT_EQ(cfg.flaps[0].down_at, 5000 * sim::kMicrosecond);
  EXPECT_EQ(cfg.flaps[0].down_for, 800 * sim::kMicrosecond);
  ASSERT_EQ(cfg.brownouts.size(), 1u);
  EXPECT_EQ(cfg.brownouts[0].at, 20000 * sim::kMicrosecond);
  EXPECT_EQ(cfg.brownouts[0].duration, 5000 * sim::kMicrosecond);
  EXPECT_EQ(cfg.brownouts[0].buffer_bytes, 16384u);
}

TEST(FaultPlanJson, EmptyObjectIsInertPlan) {
  FaultPlanConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_fault_plan("{}", &cfg, &err)) << err;
  EXPECT_FALSE(cfg.any());
}

TEST(FaultPlanJson, RejectsMalformedJson) {
  FaultPlanConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_fault_plan("{ \"flaps\": [", &cfg, &err));
  EXPECT_FALSE(err.empty());
}

TEST(FaultPlanJson, RejectsUnknownKeys) {
  // Typos must not silently disable a fault source.
  FaultPlanConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_fault_plan(R"({ "jiter_max_us": 20 })", &cfg, &err));
  EXPECT_NE(err.find("jiter_max_us"), std::string::npos) << err;
}

TEST(FaultPlanJson, RejectsTrailingGarbage) {
  FaultPlanConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_fault_plan("{} trailing", &cfg, &err));
}

// ---------------------------------------------------------------------------
// Gilbert–Elliott loss
// ---------------------------------------------------------------------------

TEST(FaultPlanGe, BadStateDropsBursts) {
  Simulator sim;
  sim.seed(7);
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0}, "wan");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  FaultPlanConfig cfg;
  cfg.ge = {.p_good_to_bad = 0.05,
            .p_bad_to_good = 0.2,
            .loss_good = 0.0,
            .loss_bad = 0.5};
  FaultPlan plan(sim, link, cfg);
  for (int i = 0; i < 2000; ++i) link.send(make_packet(10));
  sim.run();
  const Link::Stats& s = link.stats();
  EXPECT_GT(s.packets_dropped_fault, 0u);
  EXPECT_EQ(s.packets_dropped_loss, 0u);  // flat loss not configured
  EXPECT_EQ(delivered + static_cast<int>(s.packets_dropped_fault), 2000);
  expect_bytes_conserved(link);
}

TEST(FaultPlanGe, PureGoodStateDropsNothing) {
  Simulator sim;
  sim.seed(7);
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0}, "wan");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  // The chain flips states constantly but neither state ever drops: the
  // model is installed and drawing, yet perfectly inert.
  FaultPlanConfig cfg;
  cfg.ge = {.p_good_to_bad = 0.5,
            .p_bad_to_good = 0.5,
            .loss_good = 0.0,
            .loss_bad = 0.0};
  FaultPlan plan(sim, link, cfg);
  for (int i = 0; i < 500; ++i) link.send(make_packet(10));
  sim.run();
  EXPECT_EQ(delivered, 500);
  EXPECT_EQ(link.stats().packets_dropped_fault, 0u);
}

// ---------------------------------------------------------------------------
// Link flaps
// ---------------------------------------------------------------------------

TEST(FaultPlanFlap, DownWindowKillsInTransitAndRecovers) {
  Simulator sim;
  sim.seed(7);
  // 1 B/ns, 10 us propagation: a packet sent just before the flap is
  // still on the wire when the link goes down at t=50us.
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 10'000}, "wan");
  std::vector<Time> arrivals;
  link.set_sink([&](Packet&&) { arrivals.push_back(sim.now()); });
  FaultPlanConfig cfg;
  cfg.flaps.push_back({.down_at = 50'000, .down_for = 20'000});
  FaultPlan plan(sim, link, cfg);

  // One packet delivered well before the flap, one killed mid-flight,
  // one queued during the outage and delivered after the up transition.
  sim.schedule_at(1'000, [&] { link.send(make_packet(100)); });
  sim.schedule_at(45'000, [&] { link.send(make_packet(100)); });
  sim.schedule_at(60'000, [&] { link.send(make_packet(100)); });
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 11'100u);
  // Third packet waits out the outage: serializer restarts at 70us.
  EXPECT_EQ(arrivals[1], 70'000u + 100u + 10'000u);
  const Link::Stats& s = link.stats();
  EXPECT_EQ(s.packets_dropped_down, 1u);
  EXPECT_EQ(s.flaps, 1u);
  EXPECT_EQ(s.down_ns, 20'000u);
  EXPECT_FALSE(link.down());
  expect_bytes_conserved(link);
}

TEST(FaultPlanFlap, OverlappingWindowsNest) {
  Simulator sim;
  sim.seed(7);
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 0}, "wan");
  link.set_sink([](Packet&&) {});
  FaultPlanConfig cfg;
  cfg.flaps.push_back({.down_at = 10'000, .down_for = 30'000});
  cfg.flaps.push_back({.down_at = 20'000, .down_for = 40'000});  // until 60us
  FaultPlan plan(sim, link, cfg);
  sim.schedule_at(35'000, [&] { EXPECT_TRUE(link.down()); });
  // First window expired, second still open.
  sim.schedule_at(45'000, [&] { EXPECT_TRUE(link.down()); });
  sim.schedule_at(61'000, [&] { EXPECT_FALSE(link.down()); });
  sim.run();
  EXPECT_EQ(link.stats().flaps, 1u);  // one merged outage
}

// ---------------------------------------------------------------------------
// Jitter
// ---------------------------------------------------------------------------

TEST(FaultPlanJitter, DelaysBoundedByMax) {
  Simulator sim;
  sim.seed(7);
  Link link(sim, {.bytes_per_ns = 1.0, .propagation = 1'000}, "wan");
  std::vector<Time> arrivals;
  link.set_sink([&](Packet&&) { arrivals.push_back(sim.now()); });
  FaultPlanConfig cfg;
  cfg.jitter_max = 500;
  FaultPlan plan(sim, link, cfg);
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(static_cast<Time>(i) * 10'000,
                    [&] { link.send(make_packet(10)); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 200u);
  bool any_jittered = false;
  for (int i = 0; i < 200; ++i) {
    const Time base = static_cast<Time>(i) * 10'000 + 10 + 1'000;
    ASSERT_GE(arrivals[i], base);
    ASSERT_LE(arrivals[i], base + 500);
    if (arrivals[i] != base) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered);
}

// ---------------------------------------------------------------------------
// Brownouts
// ---------------------------------------------------------------------------

TEST(FaultPlanBrownout, SqueezedBufferDropsThenRestores) {
  Simulator sim;
  sim.seed(7);
  Link link(sim,
            {.bytes_per_ns = 1.0, .propagation = 0, .buffer_bytes = 10'000},
            "wan");
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  FaultPlanConfig cfg;
  cfg.brownouts.push_back(
      {.at = 10'000, .duration = 10'000, .buffer_bytes = 150});
  FaultPlan plan(sim, link, cfg);

  // During the brownout the buffer holds 150 B: a 100 B packet queued
  // behind another one overflows. After it, the full 10 KB is back.
  sim.schedule_at(15'000, [&] {
    EXPECT_TRUE(link.send(make_packet(100)));
    EXPECT_FALSE(link.send(make_packet(100)));  // 200 > 150
  });
  sim.schedule_at(30'000, [&] {
    EXPECT_TRUE(link.send(make_packet(100)));
    EXPECT_TRUE(link.send(make_packet(100)));  // 200 < 10'000 again
  });
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().packets_dropped_brownout, 1u);
  EXPECT_EQ(link.stats().packets_dropped_buffer, 1u);
}

// ---------------------------------------------------------------------------
// Longbow no-port accounting (regression: drops used to be silent)
// ---------------------------------------------------------------------------

TEST(LongbowNoPort, UnconnectedPortCountsDrops) {
  Simulator sim;
  Longbow lb(sim, "lb", /*pipeline_latency=*/1'000);
  // No wan_tx connected: LAN->WAN traffic has nowhere to go.
  lb.receive_from_lan(make_packet(100, /*id=*/1));
  sim.run();
  EXPECT_EQ(lb.drops_no_port(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(FaultDeterminism, NamedStreamsDoNotPerturbMainRng) {
  Simulator a;
  a.seed(42);
  const std::uint64_t baseline = a.rng().next_u64();

  Simulator b;
  b.seed(42);
  // Drawing heavily from named streams must leave the main stream
  // untouched — this is what keeps fault-free CSVs byte-identical when
  // fault support is compiled in.
  sim::Rng s1 = b.rng_stream("wan-a2b/faults.ge");
  sim::Rng s2 = b.rng_stream("wan-a2b/faults.jitter");
  for (int i = 0; i < 1000; ++i) {
    (void)s1.next_u64();
    (void)s2.next_u64();
  }
  EXPECT_EQ(b.rng().next_u64(), baseline);
}

TEST(FaultDeterminism, StreamsWithDifferentNamesDiffer) {
  Simulator sim;
  sim.seed(42);
  sim::Rng s1 = sim.rng_stream("a");
  sim::Rng s2 = sim.rng_stream("b");
  EXPECT_NE(s1.next_u64(), s2.next_u64());
  // Same name, same seed: reproducible.
  sim::Rng s3 = sim.rng_stream("a");
  sim::Rng s4 = sim.rng_stream("a");
  EXPECT_EQ(s3.next_u64(), s4.next_u64());
}

TEST(FaultDeterminism, InertPlanLeavesLossyRunIdentical) {
  // A run whose link uses the *main* RNG for flat loss must be
  // byte-identical with and without an installed-but-never-dropping
  // fault model riding on top.
  auto run = [](bool with_plan) {
    Simulator sim;
    sim.seed(42);
    Link link(sim, {.bytes_per_ns = 1.0, .propagation = 100, .loss_rate = 0.1},
              "wan");
    std::vector<std::pair<std::uint64_t, Time>> got;
    link.set_sink([&](Packet&& p) { got.emplace_back(p.id, sim.now()); });
    FaultPlanConfig cfg;
    cfg.ge = {.p_good_to_bad = 0.5,
              .p_bad_to_good = 0.5,
              .loss_good = 0.0,
              .loss_bad = 0.0};
    std::unique_ptr<FaultPlan> plan;
    if (with_plan) plan = std::make_unique<FaultPlan>(sim, link, cfg);
    for (int i = 0; i < 500; ++i) link.send(make_packet(10, i));
    sim.run();
    return got;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultDeterminism, SamePlanSameSeedReproduces) {
  auto run = [] {
    Simulator sim;
    sim.seed(1234);
    Link link(sim, {.bytes_per_ns = 1.0, .propagation = 1'000}, "wan");
    std::vector<std::pair<std::uint64_t, Time>> got;
    link.set_sink([&](Packet&& p) { got.emplace_back(p.id, sim.now()); });
    FaultPlanConfig cfg;
    cfg.ge = {.p_good_to_bad = 0.02,
              .p_bad_to_good = 0.3,
              .loss_good = 0.001,
              .loss_bad = 0.4};
    cfg.jitter_max = 200;
    cfg.flaps.push_back({.down_at = 100'000, .down_for = 30'000});
    FaultPlan plan(sim, link, cfg);
    for (int i = 0; i < 2000; ++i) {
      sim.schedule_at(static_cast<Time>(i) * 100,
                      [&link, i] { link.send(make_packet(10, i)); });
    }
    sim.run();
    return got;
  };
  const auto first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace ibwan::net
