#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::mpi {
namespace {

using namespace ibwan::sim::literals;

struct MpiWorld {
  explicit MpiWorld(int per_cluster, MpiConfig cfg = {},
                    sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = per_cluster, .nodes_b = per_cluster}) {
    fabric.set_wan_delay(wan_delay);
    job = std::make_unique<Job>(
        fabric, Job::split_placement(fabric, per_cluster), cfg);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<Job> job;
};

TEST(Collectives, BarrierSynchronizesAllRanks) {
  MpiWorld w(4);  // 8 ranks
  std::vector<sim::Time> after(8);
  sim::Time slowest_before = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    // Stagger arrival; everyone must leave after the last arrival.
    co_await r.compute(static_cast<sim::Duration>(r.rank()) * 100_us);
    slowest_before = std::max(slowest_before, w.sim.now());
    co_await r.barrier();
    after[r.rank()] = w.sim.now();
  });
  for (int i = 0; i < 8; ++i) EXPECT_GE(after[i], 700_us);
}

TEST(Collectives, BcastBinomialReachesEveryone) {
  for (int per_cluster : {1, 2, 3, 8}) {
    MpiWorld w(per_cluster);
    std::vector<std::uint64_t> got(2 * per_cluster, 0);
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      co_await r.bcast_binomial(0, 4096);
      got[r.rank()] = 4096;
    });
    for (auto g : got) EXPECT_EQ(g, 4096u);
  }
}

TEST(Collectives, BcastWithNonzeroRoot) {
  MpiWorld w(2);
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.bcast_binomial(3, 1024);
    ++done;
  });
  EXPECT_EQ(done, 4);
}

TEST(Collectives, BcastScatterAllgatherCompletes) {
  for (int per_cluster : {2, 3, 4}) {
    MpiWorld w(per_cluster);
    int done = 0;
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      co_await r.bcast_scatter_allgather(0, 256 * 1024);
      ++done;
    });
    EXPECT_EQ(done, 2 * per_cluster);
  }
}

TEST(Collectives, HierarchicalBcastCrossesWanExactlyOnce) {
  MpiWorld w(8);  // 16 ranks
  const auto base_pkts = w.fabric.longbows()->wan_stats_a_to_b().packets_sent;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.bcast_hierarchical(0, 2048);  // eager, one verbs message
  });
  const auto pkts =
      w.fabric.longbows()->wan_stats_a_to_b().packets_sent - base_pkts;
  // One eager message (one data packet at 2 KB + header... segmented to
  // <= 2 packets) — definitely not a tree's worth.
  EXPECT_LE(pkts, 3u);
  EXPECT_GE(pkts, 1u);
}

TEST(Collectives, HierarchicalBeatsDefaultBcastUnderDelay) {
  auto run = [&](bool hierarchical, std::uint64_t bytes) {
    MpiWorld w(8, {}, 1000_us);
    return w.job->execute([=](Rank& r) -> sim::Coro<void> {
      if (hierarchical) {
        co_await r.bcast_hierarchical(0, bytes);
      } else {
        co_await r.bcast(0, bytes);
      }
    });
  };
  // Medium (binomial baseline): job-elapsed ends at the root's final
  // send completion, which is order-invariant — so expect no regression
  // here; the latency win is asserted by the OSU-ack-protocol
  // measurement in core_tests (MpiBench.HierarchicalBcastWinsAtHighDelay).
  const double original_med = run(false, 128 << 10);
  const double modified_med = run(true, 128 << 10);
  EXPECT_LE(modified_med, original_med * 1.001);
  // Large (scatter+ring baseline): the ring crosses the WAN every step,
  // so the WAN-aware tree wins big.
  const double original_big = run(false, 1 << 20);
  const double modified_big = run(true, 1 << 20);
  EXPECT_LT(modified_big, original_big * 0.5);
}

TEST(Collectives, AllreduceCompletesPow2AndNot) {
  for (int per_cluster : {2, 3}) {
    MpiWorld w(per_cluster);
    int done = 0;
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      co_await r.allreduce(4096);
      ++done;
    });
    EXPECT_EQ(done, 2 * per_cluster);
  }
}

TEST(Collectives, ReduceCompletes) {
  MpiWorld w(4);
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.reduce(2, 32768);
    ++done;
  });
  EXPECT_EQ(done, 8);
}

TEST(Collectives, AlltoallMovesAllPairs) {
  MpiWorld w(2);  // 4 ranks
  MpiConfig cfg;
  std::vector<std::uint64_t> received(4, 0);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.alltoall(10'000);
    received[r.rank()] = r.stats().bytes_sent;
  });
  // Each rank sends 10 KB to each of the 3 others.
  for (auto b : received) EXPECT_EQ(b, 30'000u);
}

TEST(Collectives, AlltoallvHandlesUnevenAndZero) {
  MpiWorld w(2);
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    std::vector<std::uint64_t> sizes(4);
    for (int i = 0; i < 4; ++i) {
      sizes[i] = (i == r.rank()) ? 0 : static_cast<std::uint64_t>(i) * 1000;
    }
    co_await r.alltoallv(sizes);
    ++done;
  });
  EXPECT_EQ(done, 4);
}

TEST(Collectives, AllgatherCompletes) {
  MpiWorld w(3);
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.allgather(5000);
    ++done;
  });
  EXPECT_EQ(done, 6);
}

TEST(Collectives, BackToBackCollectivesDoNotCrosstalk) {
  MpiWorld w(2);
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    for (int i = 0; i < 5; ++i) {
      co_await r.bcast_binomial(i % 4, 2048);
      co_await r.barrier();
      co_await r.allreduce(64);
    }
    ++done;
  });
  EXPECT_EQ(done, 4);
}

TEST(Collectives, HierarchicalBcastMatchesBinomialResultShape) {
  // Same delivery guarantee as binomial: everyone gets the bytes.
  MpiWorld w(4);
  std::vector<int> got(8, 0);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.bcast_hierarchical(5, 8192);  // non-zero root, cluster B
    got[r.rank()] = 1;
  });
  for (int g : got) EXPECT_EQ(g, 1);
}

}  // namespace
}  // namespace ibwan::mpi
