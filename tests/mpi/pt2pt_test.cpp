#include <gtest/gtest.h>

#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::mpi {
namespace {

using namespace ibwan::sim::literals;

struct MpiWorld {
  explicit MpiWorld(int per_cluster, MpiConfig cfg = {},
                    sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = per_cluster, .nodes_b = per_cluster}) {
    fabric.set_wan_delay(wan_delay);
    job = std::make_unique<Job>(
        fabric, Job::split_placement(fabric, per_cluster), cfg);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<Job> job;
};

TEST(MpiPt2pt, BlockingSendRecvAcrossWan) {
  MpiWorld w(1);
  std::uint64_t got = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 4096, 7);
    } else {
      got = co_await r.recv(0, 7);
    }
  });
  EXPECT_EQ(got, 4096u);
}

TEST(MpiPt2pt, EagerAndRendezvousBothDeliver) {
  for (std::uint64_t bytes : {64ull, 1024ull, 8192ull, 262144ull}) {
    MpiWorld w(1);
    std::uint64_t got = 0;
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      if (r.rank() == 0) {
        co_await r.send(1, bytes);
      } else {
        got = co_await r.recv(0);
      }
    });
    EXPECT_EQ(got, bytes) << bytes;
  }
}

TEST(MpiPt2pt, ProtocolSelectionFollowsThreshold) {
  MpiWorld w(1);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 100);    // eager
      co_await r.send(1, 8192);   // rendezvous (>= 8K default)
      co_await r.send(1, 65536);  // rendezvous
    } else {
      co_await r.recv(0);
      co_await r.recv(0);
      co_await r.recv(0);
    }
  });
  EXPECT_EQ(w.job->rank(0).stats().eager_sent, 1u);
  EXPECT_EQ(w.job->rank(0).stats().rndv_sent, 2u);
}

TEST(MpiPt2pt, ThresholdOverrideChangesProtocol) {
  MpiWorld w(1);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    r.set_rendezvous_threshold(64 * 1024);  // the Figure 9 tuned value
    if (r.rank() == 0) {
      co_await r.send(1, 8192);   // now eager
      co_await r.send(1, 32768);  // still eager
      co_await r.send(1, 65536);  // rendezvous
    } else {
      co_await r.recv(0);
      co_await r.recv(0);
      co_await r.recv(0);
    }
  });
  EXPECT_EQ(w.job->rank(0).stats().eager_sent, 2u);
  EXPECT_EQ(w.job->rank(0).stats().rndv_sent, 1u);
}

TEST(MpiPt2pt, TagMatchingIsSelective) {
  MpiWorld w(1);
  std::vector<std::uint64_t> order;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 100, /*tag=*/5);
      co_await r.send(1, 200, /*tag=*/6);
    } else {
      // Receive tag 6 first even though tag 5 arrives first.
      order.push_back(co_await r.recv(0, 6));
      order.push_back(co_await r.recv(0, 5));
    }
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 200u);
  EXPECT_EQ(order[1], 100u);
  EXPECT_GE(w.job->rank(1).stats().unexpected, 1u);
}

TEST(MpiPt2pt, AnySourceReceives) {
  MpiWorld w(2);  // 4 ranks
  int sources_seen = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        Request req = r.irecv(kAnySource, 9);
        co_await r.wait(req);
        EXPECT_GT(req.source(), 0);
        ++sources_seen;
      }
    } else {
      co_await r.send(0, 64, 9);
    }
  });
  EXPECT_EQ(sources_seen, 3);
}

TEST(MpiPt2pt, ManyOutstandingRequestsComplete) {
  MpiWorld w(1);
  std::uint64_t total = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int n = 64;
    if (r.rank() == 0) {
      std::vector<Request> reqs;
      for (int i = 0; i < n; ++i) reqs.push_back(r.isend(1, 2048, i));
      co_await r.wait_all(std::move(reqs));
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < n; ++i) reqs.push_back(r.irecv(0, i));
      co_await r.wait_all(reqs);
      for (auto& q : reqs) total += q.bytes();
    }
  });
  EXPECT_EQ(total, 64u * 2048);
}

TEST(MpiPt2pt, RendezvousUsesRdmaZeroCopy) {
  // A rendezvous transfer crosses with RTS/CTS/FIN control plus RDMA
  // data; the verbs stats of the receiving QP should show the write.
  MpiWorld w(1);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 1 << 20);
    } else {
      co_await r.recv(0);
    }
  });
  EXPECT_EQ(w.job->rank(0).stats().rndv_sent, 1u);
}

TEST(MpiPt2pt, WanDelaySlowsRendezvousMoreThanEager) {
  // The handshake costs an extra round trip, which is the Figure 9
  // motivation. Compare one 8 KB transfer both ways at 1 ms delay.
  auto one_transfer = [&](std::uint64_t threshold) {
    MpiWorld w(1, {}, 1000_us);
    return w.job->execute([&](Rank& r) -> sim::Coro<void> {
      r.set_rendezvous_threshold(threshold);
      if (r.rank() == 0) {
        co_await r.send(1, 8192);
      } else {
        co_await r.recv(0);
      }
    });
  };
  const double rndv = one_transfer(8192);    // rendezvous path
  const double eager = one_transfer(65536);  // eager path
  // Rendezvous pays RTS+CTS (one full RTT = 2 ms) before data.
  EXPECT_GT(rndv, eager + 0.0018);
}

TEST(MpiPt2pt, SelfRankCountsAreConsistent) {
  MpiWorld w(2);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    EXPECT_EQ(r.size(), 4);
    EXPECT_EQ(&r.job().rank(r.rank()), &r);
    co_return;
  });
}

TEST(MpiPt2pt, ExecuteReportsElapsedTime) {
  MpiWorld w(1);
  const double secs = w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.compute(5_ms);
  });
  EXPECT_NEAR(secs, 0.005, 1e-6);
}

}  // namespace
}  // namespace ibwan::mpi
