// Point-to-point semantics edge cases: unexpected-queue ordering,
// rendezvous arriving before the receive, mixed-protocol FIFO per
// (source, tag), and cross-pair isolation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::mpi {
namespace {

using namespace ibwan::sim::literals;

struct MpiWorld {
  explicit MpiWorld(int per_cluster, sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = per_cluster, .nodes_b = per_cluster}) {
    fabric.set_wan_delay(wan_delay);
    job = std::make_unique<Job>(
        fabric, Job::split_placement(fabric, per_cluster));
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<Job> job;
};

TEST(MpiEdge, UnexpectedEagerMessagesMatchInArrivalOrder) {
  MpiWorld w(1);
  std::vector<std::uint64_t> sizes;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        co_await r.send(1, 100 + static_cast<std::uint64_t>(i), 3);
      }
      co_await r.send(1, 1, 4);  // release the receiver
    } else {
      co_await r.recv(0, 4);  // all tag-3 messages are now unexpected
      for (int i = 0; i < 5; ++i) sizes.push_back(co_await r.recv(0, 3));
    }
  });
  ASSERT_EQ(sizes.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sizes[i], 100u + static_cast<std::uint64_t>(i));
  }
}

TEST(MpiEdge, RendezvousRtsBeforeRecvCompletes) {
  MpiWorld w(1);
  std::uint64_t got = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 1 << 20, 9);  // RTS arrives before any recv
    } else {
      co_await r.compute(2_ms);  // make the RTS definitely unexpected
      got = co_await r.recv(0, 9);
    }
  });
  EXPECT_EQ(got, 1u << 20);
}

TEST(MpiEdge, MixedProtocolSameTagPreservesOrder) {
  MpiWorld w(1);
  std::vector<std::uint64_t> sizes;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(r.isend(1, 100, 1));        // eager
      reqs.push_back(r.isend(1, 1 << 20, 1));    // rendezvous
      reqs.push_back(r.isend(1, 200, 1));        // eager
      co_await r.wait_all(std::move(reqs));
    } else {
      for (int i = 0; i < 3; ++i) sizes.push_back(co_await r.recv(0, 1));
    }
  });
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 100u);
  EXPECT_EQ(sizes[1], 1u << 20);
  EXPECT_EQ(sizes[2], 200u);
}

TEST(MpiEdge, PairsDoNotCrossTalk) {
  MpiWorld w(2);  // ranks 0,1 (A) and 2,3 (B)
  std::uint64_t got02 = 0, got13 = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    switch (r.rank()) {
      case 0: co_await r.send(2, 111, 0); break;
      case 1: co_await r.send(3, 222, 0); break;
      case 2: got02 = co_await r.recv(kAnySource, 0); break;
      case 3: got13 = co_await r.recv(kAnySource, 0); break;
    }
  });
  EXPECT_EQ(got02, 111u);
  EXPECT_EQ(got13, 222u);
}

TEST(MpiEdge, WaitOnCompletedRequestReturnsImmediately) {
  MpiWorld w(1);
  int waits = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      Request s = r.isend(1, 64, 0);
      co_await r.wait(s);
      co_await r.wait(s);  // second wait on a done request
      ++waits;
    } else {
      co_await r.recv(0, 0);
    }
  });
  EXPECT_EQ(waits, 1);
}

TEST(MpiEdge, ManyConcurrentRendezvousTransfers) {
  MpiWorld w(1, 100_us);
  std::uint64_t total = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int n = 24;
    if (r.rank() == 0) {
      std::vector<Request> reqs;
      for (int i = 0; i < n; ++i) reqs.push_back(r.isend(1, 256 << 10, i));
      co_await r.wait_all(std::move(reqs));
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < n; ++i) reqs.push_back(r.irecv(0, i));
      co_await r.wait_all(reqs);
      for (auto& q : reqs) total += q.bytes();
    }
  });
  EXPECT_EQ(total, 24u * (256 << 10));
}

TEST(MpiEdge, SourceFilteredRecvIgnoresOtherSenders) {
  MpiWorld w(2);
  std::uint64_t from3 = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      // Receive specifically from rank 3 first, then from rank 1.
      from3 = co_await r.recv(3, 5);
      co_await r.recv(1, 5);
    } else if (r.rank() == 1) {
      co_await r.send(0, 111, 5);
    } else if (r.rank() == 3) {
      co_await r.compute(1_ms);  // rank 1's message arrives first
      co_await r.send(0, 333, 5);
    }
  });
  EXPECT_EQ(from3, 333u);
}

TEST(MpiEdge, JobsAreIndependent) {
  // Two jobs on separate fabrics do not share request-id or tag space.
  MpiWorld w1(1), w2(1);
  std::uint64_t a = 0, b = 0;
  w1.job->run([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 10, 0);
    } else {
      a = co_await r.recv(0, 0);
    }
  });
  w2.job->run([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 20, 0);
    } else {
      b = co_await r.recv(0, 0);
    }
  });
  w1.sim.run();
  w2.sim.run();
  EXPECT_EQ(a, 10u);
  EXPECT_EQ(b, 20u);
}

}  // namespace
}  // namespace ibwan::mpi
