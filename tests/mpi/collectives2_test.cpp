// Gather/scatter/reduce_scatter and request-completion utilities.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::mpi {
namespace {

using namespace ibwan::sim::literals;

struct MpiWorld {
  explicit MpiWorld(int per_cluster, sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = per_cluster, .nodes_b = per_cluster}) {
    fabric.set_wan_delay(wan_delay);
    job = std::make_unique<Job>(
        fabric, Job::split_placement(fabric, per_cluster));
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<Job> job;
};

class GatherScatterTest : public ::testing::TestWithParam<int> {};

TEST_P(GatherScatterTest, GatherCompletesAtEveryRoot) {
  const int per_cluster = GetParam();
  for (int root : {0, per_cluster, 2 * per_cluster - 1}) {
    MpiWorld w(per_cluster);
    int done = 0;
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      co_await r.gather(root, 4096);
      ++done;
    });
    EXPECT_EQ(done, 2 * per_cluster) << root;
  }
}

TEST_P(GatherScatterTest, ScatterCompletesAtEveryRoot) {
  const int per_cluster = GetParam();
  for (int root : {0, 2 * per_cluster - 1}) {
    MpiWorld w(per_cluster);
    int done = 0;
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      co_await r.scatter(root, 4096);
      ++done;
    });
    EXPECT_EQ(done, 2 * per_cluster) << root;
  }
}

TEST_P(GatherScatterTest, GatherMovesRootProportionalBytes) {
  const int per_cluster = GetParam();
  MpiWorld w(per_cluster);
  const int p = 2 * per_cluster;
  std::uint64_t root_received = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    co_await r.gather(0, 1000);
    if (r.rank() == 0) root_received = r.stats().msgs_received;
  });
  // The root has exactly log2-ish children; each hands over a subtree.
  EXPECT_GE(root_received, 1u);
  EXPECT_LE(root_received, static_cast<std::uint64_t>(p));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GatherScatterTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ReduceScatter, CompletesPow2AndNonPow2) {
  for (int per_cluster : {2, 3, 4}) {
    MpiWorld w(per_cluster);
    int done = 0;
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      co_await r.reduce_scatter(8192);
      ++done;
    });
    EXPECT_EQ(done, 2 * per_cluster);
  }
}

TEST(ReduceScatter, CheaperThanReducePlusScatterOverWan) {
  // Recursive halving moves less data across the WAN than a full
  // reduce-to-root followed by a scatter.
  auto run = [&](bool fused) {
    MpiWorld w(4, 100_us);
    return w.job->execute([fused](Rank& r) -> sim::Coro<void> {
      if (fused) {
        co_await r.reduce_scatter(64 << 10);
      } else {
        co_await r.reduce(0, static_cast<std::uint64_t>(r.size()) *
                                 (64 << 10));
        co_await r.scatter(0, 64 << 10);
      }
    });
  };
  EXPECT_LT(run(true), run(false));
}

TEST(WaitAny, ReturnsFirstCompletion) {
  MpiWorld w(1, 100_us);
  int first = -1;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      // Two receives; peer sends tag 5 only after a pause, tag 6 first.
      std::vector<Request> reqs;
      reqs.push_back(r.irecv(1, 5));
      reqs.push_back(r.irecv(1, 6));
      first = co_await r.wait_any(reqs);
      co_await r.wait_all(reqs);
    } else {
      co_await r.send(0, 64, 6);
      co_await r.compute(5_ms);
      co_await r.send(0, 64, 5);
    }
  });
  EXPECT_EQ(first, 1);  // tag-6 receive (index 1) lands first
}

TEST(WaitAny, ImmediateIfAlreadyDone) {
  MpiWorld w(1);
  int idx = -1;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      Request req = r.irecv(1, 1);
      co_await r.wait(req);
      std::vector<Request> reqs{req};
      idx = co_await r.wait_any(reqs);
    } else {
      co_await r.send(0, 8, 1);
    }
  });
  EXPECT_EQ(idx, 0);
}

}  // namespace
}  // namespace ibwan::mpi
