// Eager-message coalescing: semantics must be untouched (order,
// conservation, matching), and the WAN message rate must improve.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::mpi {
namespace {

using namespace ibwan::sim::literals;

struct MpiWorld {
  explicit MpiWorld(int per_cluster, MpiConfig cfg = {},
                    sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = per_cluster, .nodes_b = per_cluster}) {
    fabric.set_wan_delay(wan_delay);
    job = std::make_unique<Job>(
        fabric, Job::split_placement(fabric, per_cluster), cfg);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<Job> job;
};

MpiConfig coalescing_on() {
  MpiConfig cfg;
  cfg.coalescing = true;
  return cfg;
}

TEST(Coalescing, PreservesOrderAndSizes) {
  MpiWorld w(1, coalescing_on());
  std::vector<std::uint64_t> sizes;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        (void)r.isend(1, 10 + static_cast<std::uint64_t>(i), 3);
      }
      co_await r.send(1, 1, 4);  // trailing sentinel
    } else {
      for (int i = 0; i < 50; ++i) sizes.push_back(co_await r.recv(0, 3));
      co_await r.recv(0, 4);
    }
  });
  ASSERT_EQ(sizes.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sizes[i], 10u + static_cast<std::uint64_t>(i));
  }
}

TEST(Coalescing, BundlesReduceWireMessages) {
  auto wire_msgs = [](bool on) {
    MpiWorld w(1, on ? coalescing_on() : MpiConfig{});
    std::uint64_t msgs = 0;
    w.job->execute([&](Rank& r) -> sim::Coro<void> {
      if (r.rank() == 0) {
        std::vector<Request> reqs;
        for (int i = 0; i < 64; ++i) reqs.push_back(r.isend(1, 64, 1));
        co_await r.wait_all(std::move(reqs));
      } else {
        for (int i = 0; i < 64; ++i) co_await r.recv(0, 1);
        msgs = r.stats().msgs_received;  // MPI-level count (always 64)
      }
    });
    // Count verbs-level messages through the WAN packets instead.
    return w.fabric.longbows()->wan_stats_a_to_b().packets_sent;
  };
  EXPECT_LT(wire_msgs(true), wire_msgs(false) / 2);
}

TEST(Coalescing, FlushTimerDeliversStragglers) {
  // A lone small message must still arrive promptly (flush timer), not
  // wait for a full bundle.
  MpiWorld w(1, coalescing_on());
  sim::Time arrival = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      (void)r.isend(1, 32, 0);
      co_await r.compute(10_ms);  // keep the rank alive, send nothing else
    } else {
      co_await r.recv(0, 0);
      arrival = r.sim().now();
    }
  });
  EXPECT_GT(arrival, 0u);
  EXPECT_LT(arrival, 100_us);  // timer flush, not 10 ms
}

TEST(Coalescing, LargeMessagesBypassBundling) {
  MpiWorld w(1, coalescing_on());
  std::uint64_t got = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      co_await r.send(1, 1 << 20);  // rendezvous path, untouched
    } else {
      got = co_await r.recv(0);
    }
  });
  EXPECT_EQ(got, 1u << 20);
}

TEST(Coalescing, MixedTrafficInterleavesCorrectly) {
  MpiWorld w(1, coalescing_on(), 100_us);
  std::vector<std::uint64_t> sizes;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    if (r.rank() == 0) {
      (void)r.isend(1, 100, 1);
      (void)r.isend(1, 64 << 10, 1);  // rendezvous between bundles
      (void)r.isend(1, 200, 1);
      co_await r.compute(50_ms);
    } else {
      for (int i = 0; i < 3; ++i) sizes.push_back(co_await r.recv(0, 1));
    }
  });
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 100u);
  EXPECT_EQ(sizes[1], 64u << 10);
  EXPECT_EQ(sizes[2], 200u);
}

TEST(Coalescing, ImprovesWanMessageThroughput) {
  auto elapsed = [](bool on) {
    MpiWorld w(1, on ? coalescing_on() : MpiConfig{}, 1000_us);
    return w.job->execute([](Rank& r) -> sim::Coro<void> {
      const int n = 512;
      if (r.rank() == 0) {
        std::vector<Request> reqs;
        for (int i = 0; i < n; ++i) reqs.push_back(r.isend(1, 64, 1));
        co_await r.wait_all(std::move(reqs));
        co_await r.recv(1, 2);
      } else {
        for (int i = 0; i < n; ++i) co_await r.recv(0, 1);
        co_await r.send(0, 4, 2);
      }
    });
  };
  EXPECT_LT(elapsed(true), elapsed(false) * 0.5);
}

}  // namespace
}  // namespace ibwan::mpi
