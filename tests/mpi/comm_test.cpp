// Sub-communicator construction and subgroup collectives.
#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::mpi {
namespace {

using namespace ibwan::sim::literals;

struct MpiWorld {
  explicit MpiWorld(int per_cluster, sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = per_cluster, .nodes_b = per_cluster}) {
    fabric.set_wan_delay(wan_delay);
    job = std::make_unique<Job>(
        fabric, Job::split_placement(fabric, per_cluster));
    splitter = std::make_unique<CommSplitter>(*job);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<Job> job;
  std::unique_ptr<CommSplitter> splitter;
};

TEST(Comm, SplitByClusterGroupsCorrectly) {
  MpiWorld w(4);
  std::vector<std::shared_ptr<Comm>> comms(8);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int color = r.cluster() == net::Cluster::kA ? 0 : 1;
    comms[r.rank()] = co_await w.splitter->split(r, color);
  });
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(comms[i], nullptr);
    EXPECT_EQ(comms[i]->size(), 4);
  }
  // Ranks 0-3 share one communicator; 4-7 the other.
  EXPECT_EQ(comms[0].get(), comms[3].get());
  EXPECT_EQ(comms[4].get(), comms[7].get());
  EXPECT_NE(comms[0].get(), comms[4].get());
  EXPECT_EQ(comms[0]->comm_rank(2), 2);
  EXPECT_EQ(comms[4]->comm_rank(6), 2);
  EXPECT_EQ(comms[0]->comm_rank(6), -1);
}

TEST(Comm, KeyControlsOrdering) {
  MpiWorld w(2);
  std::shared_ptr<Comm> comm;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    // Reverse order via descending keys.
    comm = co_await w.splitter->split(r, 0, -r.rank());
  });
  ASSERT_NE(comm, nullptr);
  EXPECT_EQ(comm->member(0), 3);
  EXPECT_EQ(comm->member(3), 0);
}

TEST(Comm, SubgroupBcastReachesOnlyMembers) {
  MpiWorld w(4);
  std::vector<int> reached(8, 0);
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int color = r.cluster() == net::Cluster::kA ? 0 : 1;
    auto comm = co_await w.splitter->split(r, color);
    if (color == 0) {
      co_await comm->bcast(r, 0, 32 << 10);
      reached[r.rank()] = 1;
    }
  });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(reached[i], 1);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(reached[i], 0);
}

TEST(Comm, ClusterLocalBcastAvoidsWan) {
  MpiWorld w(4);
  const auto base = w.fabric.longbows()->wan_stats_a_to_b().packets_sent +
                    w.fabric.longbows()->wan_stats_b_to_a().packets_sent;
  std::shared_ptr<Comm> comm_a;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int color = r.cluster() == net::Cluster::kA ? 0 : 1;
    auto comm = co_await w.splitter->split(r, color);
    co_await comm->bcast(r, 0, 64 << 10);
  });
  // The split's barrier crosses the WAN, but both cluster broadcasts
  // must not: compare against a barrier-only run.
  MpiWorld w2(4);
  w2.job->execute([&](Rank& r) -> sim::Coro<void> { co_await r.barrier(); });
  const auto barrier_pkts =
      w2.fabric.longbows()->wan_stats_a_to_b().packets_sent +
      w2.fabric.longbows()->wan_stats_b_to_a().packets_sent;
  const auto total = w.fabric.longbows()->wan_stats_a_to_b().packets_sent +
                     w.fabric.longbows()->wan_stats_b_to_a().packets_sent -
                     base;
  EXPECT_LE(total, barrier_pkts + 8);  // no bulk data on the WAN
}

TEST(Comm, SubgroupCollectivesComplete) {
  MpiWorld w(3);  // 3 per cluster: non-pow2 subgroups
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int color = r.cluster() == net::Cluster::kA ? 0 : 1;
    auto comm = co_await w.splitter->split(r, color);
    co_await comm->barrier(r);
    co_await comm->allreduce(r, 4096);
    co_await comm->reduce(r, 0, 8192);
    co_await comm->allgather(r, 2048);
    ++done;
  });
  EXPECT_EQ(done, 6);
}

TEST(Comm, HierarchicalBcastBuiltFromComms) {
  // The general WAN-aware pattern: cluster comms + explicit bridge.
  MpiWorld w(8, 1000_us);
  int done = 0;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int color = r.cluster() == net::Cluster::kA ? 0 : 1;
    auto local = co_await w.splitter->split(r, color);
    // Bridge: world rank 0 -> first rank of cluster B.
    const int remote_leader = 8;
    if (r.rank() == 0) co_await r.send(remote_leader, 128 << 10, 77);
    if (r.rank() == remote_leader) co_await r.recv(0, 77);
    co_await local->bcast(r, 0, 128 << 10);
    ++done;
  });
  EXPECT_EQ(done, 16);
}

TEST(Comm, SequentialSplitsAreIndependent) {
  MpiWorld w(2);
  std::shared_ptr<Comm> by_cluster, by_parity;
  w.job->execute([&](Rank& r) -> sim::Coro<void> {
    const int c1 = r.cluster() == net::Cluster::kA ? 0 : 1;
    auto a = co_await w.splitter->split(r, c1);
    auto b = co_await w.splitter->split(r, r.rank() % 2);
    if (r.rank() == 0) {
      by_cluster = a;
      by_parity = b;
    }
    co_await a->barrier(r);
    co_await b->barrier(r);
  });
  ASSERT_NE(by_cluster, nullptr);
  ASSERT_NE(by_parity, nullptr);
  EXPECT_EQ(by_cluster->size(), 2);
  EXPECT_EQ(by_parity->size(), 2);
  EXPECT_NE(by_cluster->id(), by_parity->id());
}

}  // namespace
}  // namespace ibwan::mpi
