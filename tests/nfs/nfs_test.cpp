// End-to-end NFS tests over both transports across the WAN fabric.
#include "nfs/nfs.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::nfs {
namespace {

using namespace ibwan::sim::literals;

/// Server on cluster A, client on cluster B, NFS over RDMA.
struct RdmaNfsWorld {
  // The NFS/RDMA server keeps a deeper send queue than the perftest
  // default (it streams many 4 KB chunk writes per READ).
  explicit RdmaNfsWorld(sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        server_hca(fabric.node(0), {.rc_max_inflight_msgs = 64}),
        client_hca(fabric.node(1), {}),
        rpc_server(server_hca),
        rpc_client(client_hca, rpc_server),
        nfs_server(sim, NfsConfig{.chunk_bytes = 4096}),
        nfs_client(rpc_client) {
    fabric.set_wan_delay(wan_delay);
    rpc_server.set_handler(nfs_server.handler());
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca server_hca, client_hca;
  rpc::RdmaRpcServer rpc_server;
  rpc::RdmaRpcClient rpc_client;
  NfsServer nfs_server;
  NfsClient nfs_client;
};

/// Same topology, NFS over IPoIB (TCP).
struct TcpNfsWorld {
  explicit TcpNfsWorld(ipoib::IpoibConfig dev_cfg = {},
                       sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        server_hca(fabric.node(0), {}),
        client_hca(fabric.node(1), {}),
        server_dev(server_hca, dev_cfg),
        client_dev(client_hca, dev_cfg),
        server_stack(server_dev),
        client_stack(client_dev),
        rpc_server(server_stack, 2049),
        rpc_client(client_stack, 0, 2049),
        nfs_server(sim, NfsConfig{}),
        nfs_client(rpc_client) {
    fabric.set_wan_delay(wan_delay);
    ipoib::IpoibDevice::link(server_dev, client_dev);
    rpc_server.set_handler(nfs_server.handler());
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca server_hca, client_hca;
  ipoib::IpoibDevice server_dev, client_dev;
  tcp::TcpStack server_stack, client_stack;
  rpc::TcpRpcServer rpc_server;
  rpc::TcpRpcClient rpc_client;
  NfsServer nfs_server;
  NfsClient nfs_client;
};

template <typename World>
std::uint64_t do_read(World& w, std::uint64_t offset, std::uint64_t count) {
  std::uint64_t got = 0;
  [](World& nw, std::uint64_t off, std::uint64_t cnt,
     std::uint64_t* out) -> sim::Task {
    *out = co_await nw.nfs_client.read(1, off, cnt);
  }(w, offset, count, &got);
  w.sim.run();
  return got;
}

TEST(NfsRdma, ReadReturnsRequestedBytes) {
  RdmaNfsWorld w;
  w.nfs_server.add_file(1, 1 << 20);
  EXPECT_EQ(do_read(w, 0, 256 << 10), 256u << 10);
  EXPECT_EQ(w.nfs_server.stats().reads, 1u);
  EXPECT_EQ(w.nfs_server.stats().bytes_read, 256u << 10);
}

TEST(NfsRdma, ReadTruncatesAtEof) {
  RdmaNfsWorld w;
  w.nfs_server.add_file(1, 10'000);
  EXPECT_EQ(do_read(w, 8'000, 4'096), 2'000u);
  EXPECT_EQ(do_read(w, 20'000, 4'096), 0u);
}

TEST(NfsRdma, WriteExtendsFile) {
  RdmaNfsWorld w;
  w.nfs_server.add_file(1, 0);
  [](RdmaNfsWorld& nw) -> sim::Task {
    co_await nw.nfs_client.write(1, 0, 100'000);
    co_await nw.nfs_client.write(1, 100'000, 50'000);
  }(w);
  w.sim.run();
  EXPECT_EQ(w.nfs_server.file_size(1), 150'000u);
  EXPECT_EQ(w.nfs_server.stats().writes, 2u);
}

TEST(NfsRdma, GetattrRoundTrips) {
  RdmaNfsWorld w;
  w.nfs_server.add_file(1, 123);
  std::uint64_t got = 0;
  [](RdmaNfsWorld& nw, std::uint64_t* out) -> sim::Task {
    *out = co_await nw.nfs_client.getattr(1);
  }(w, &got);
  w.sim.run();
  EXPECT_GT(got, 0u);
}

TEST(NfsTcp, ReadAndWriteOverIpoib) {
  TcpNfsWorld w;
  w.nfs_server.add_file(1, 1 << 20);
  EXPECT_EQ(do_read(w, 0, 256 << 10), 256u << 10);
  [](TcpNfsWorld& nw) -> sim::Task {
    co_await nw.nfs_client.write(1, 1 << 20, 4096);
  }(w);
  w.sim.run();
  EXPECT_EQ(w.nfs_server.file_size(1), (1u << 20) + 4096);
}

TEST(NfsTcp, ConcurrentCallsShareOneConnection) {
  TcpNfsWorld w;
  w.nfs_server.add_file(1, 4 << 20);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    [](TcpNfsWorld& nw, int idx, int* counter) -> sim::Task {
      const std::uint64_t got =
          co_await nw.nfs_client.read(1, static_cast<std::uint64_t>(idx) << 18,
                                      256 << 10);
      EXPECT_EQ(got, 256u << 10);
      ++*counter;
    }(w, i, &done);
  }
  w.sim.run();
  EXPECT_EQ(done, 8);
}

TEST(Iozone, ReadsWholeFileOnce) {
  RdmaNfsWorld w;
  w.nfs_server.add_file(1, 8 << 20);
  IozoneConfig cfg{.file_bytes = 8 << 20, .record_bytes = 256 << 10,
                   .threads = 4};
  const IozoneResult r = run_iozone(w.sim, w.nfs_client, cfg);
  EXPECT_EQ(r.bytes, 8u << 20);
  EXPECT_EQ(w.nfs_server.stats().reads, 32u);
  EXPECT_GT(r.mbytes_per_sec, 100.0);
}

TEST(Iozone, WriteWorkloadMovesAllBytes) {
  RdmaNfsWorld w;
  w.nfs_server.add_file(1, 0);
  IozoneConfig cfg{.file_bytes = 4 << 20, .record_bytes = 256 << 10,
                   .threads = 2, .write = true};
  const IozoneResult r = run_iozone(w.sim, w.nfs_client, cfg);
  EXPECT_EQ(r.bytes, 4u << 20);
  EXPECT_EQ(w.nfs_server.file_size(1), 4u << 20);
}

TEST(Iozone, MoreThreadsDoNotLoseData) {
  for (int threads : {1, 3, 8}) {
    RdmaNfsWorld w;
    w.nfs_server.add_file(1, 6 << 20);
    IozoneConfig cfg{.file_bytes = 6 << 20, .record_bytes = 256 << 10,
                     .threads = threads};
    const IozoneResult r = run_iozone(w.sim, w.nfs_client, cfg);
    EXPECT_EQ(r.bytes, 6u << 20) << threads;
  }
}

TEST(NfsComparison, RdmaBeatsIpoibAtLowDelay) {
  // Figure 13(b) at 100 us: RDMA > IPoIB.
  RdmaNfsWorld rdma(100_us);
  rdma.nfs_server.add_file(1, 32 << 20);
  const auto r_rdma = run_iozone(
      rdma.sim, rdma.nfs_client,
      {.file_bytes = 32 << 20, .record_bytes = 256 << 10, .threads = 4});

  TcpNfsWorld tcp({}, 100_us);
  tcp.nfs_server.add_file(1, 32 << 20);
  const auto r_tcp = run_iozone(
      tcp.sim, tcp.nfs_client,
      {.file_bytes = 32 << 20, .record_bytes = 256 << 10, .threads = 4});

  EXPECT_GT(r_rdma.mbytes_per_sec, r_tcp.mbytes_per_sec);
}

TEST(NfsComparison, RdmaDropsSharplyAtHighDelay) {
  // Figure 13(a): the 4 KB chunking makes NFS/RDMA collapse at 1 ms.
  RdmaNfsWorld fast(0);
  fast.nfs_server.add_file(1, 16 << 20);
  const auto r0 = run_iozone(
      fast.sim, fast.nfs_client,
      {.file_bytes = 16 << 20, .record_bytes = 256 << 10, .threads = 4});

  RdmaNfsWorld slow(1000_us);
  slow.nfs_server.add_file(1, 16 << 20);
  const auto r1 = run_iozone(
      slow.sim, slow.nfs_client,
      {.file_bytes = 16 << 20, .record_bytes = 256 << 10, .threads = 4});

  EXPECT_LT(r1.mbytes_per_sec, r0.mbytes_per_sec * 0.25);
}

}  // namespace
}  // namespace ibwan::nfs
