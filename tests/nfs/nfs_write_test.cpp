// NFS write-path coverage (the paper omits write figures — "NFS Write
// shows similar performance" — but the path must behave).
#include "nfs/nfs.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::nfs {
namespace {

using namespace ibwan::sim::literals;

struct WriteWorld {
  explicit WriteWorld(sim::Duration delay = 0)
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        server_hca(fabric.node(0), {.rc_max_inflight_msgs = 64}),
        client_hca(fabric.node(1), {}),
        rpc_server(server_hca),
        rpc_client(client_hca, rpc_server),
        nfs_server(sim, NfsConfig{.chunk_bytes = 4096}),
        nfs_client(rpc_client) {
    fabric.set_wan_delay(delay);
    rpc_server.set_handler(nfs_server.handler());
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca server_hca, client_hca;
  rpc::RdmaRpcServer rpc_server;
  rpc::RdmaRpcClient rpc_client;
  NfsServer nfs_server;
  NfsClient nfs_client;
};

TEST(NfsWrite, RdmaWriteWorkloadAcrossDelays) {
  for (sim::Duration delay : {sim::Duration{0}, 100_us, 1000_us}) {
    WriteWorld w(delay);
    w.nfs_server.add_file(1, 0);
    IozoneConfig cfg{.file_bytes = 8 << 20,
                     .record_bytes = 256 << 10,
                     .threads = 4,
                     .write = true};
    const auto r = run_iozone(w.sim, w.nfs_client, cfg);
    EXPECT_EQ(r.bytes, 8u << 20) << delay;
    EXPECT_EQ(w.nfs_server.file_size(1), 8u << 20) << delay;
    EXPECT_EQ(w.nfs_server.stats().writes, 32u) << delay;
  }
}

TEST(NfsWrite, WriteThroughputAlsoCollapsesWithDelay) {
  // "Similar performance" to reads (paper): server-side RDMA reads of
  // 4 KB chunks are just as latency-bound as the writes.
  auto mbps = [](sim::Duration delay) {
    WriteWorld w(delay);
    w.nfs_server.add_file(1, 0);
    return run_iozone(w.sim, w.nfs_client,
                      {.file_bytes = 8 << 20,
                       .record_bytes = 256 << 10,
                       .threads = 4,
                       .write = true})
        .mbytes_per_sec;
  };
  const double fast = mbps(0);
  const double slow = mbps(1000_us);
  EXPECT_LT(slow, fast * 0.35);
}

TEST(NfsWrite, InterleavedReadsAndWrites) {
  WriteWorld w(100_us);
  w.nfs_server.add_file(1, 4 << 20);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    [](WriteWorld& nw, int idx, int* flag) -> sim::Task {
      const std::uint64_t off = static_cast<std::uint64_t>(idx) << 20;
      co_await nw.nfs_client.write(1, (4u << 20) + off, 1 << 20);
      const std::uint64_t got = co_await nw.nfs_client.read(1, off, 1 << 20);
      EXPECT_EQ(got, 1u << 20);
      ++*flag;
    }(w, i, &done);
  }
  w.sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(w.nfs_server.file_size(1), 8u << 20);
}

}  // namespace
}  // namespace ibwan::nfs
