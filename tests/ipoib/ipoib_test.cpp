// IPoIB device behaviour (below TCP): encapsulation accounting,
// neighbor handling, host-CPU serialization, both modes.
#include "ipoib/ipoib.hpp"

#include <gtest/gtest.h>

#include "ib/hca.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::ipoib {
namespace {

struct DevWorld {
  explicit DevWorld(IpoibConfig cfg = {})
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        dev_a(hca_a, cfg),
        dev_b(hca_b, cfg) {
    IpoibDevice::link(dev_a, dev_b);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a, hca_b;
  IpoibDevice dev_a, dev_b;
};

IpPacket packet_to(net::NodeId dst, std::uint32_t payload) {
  IpPacket p;
  p.dst = dst;
  p.payload_bytes = payload;
  return p;
}

TEST(IpoibDevice, DeliversPayloadWithSource) {
  DevWorld w;
  IpPacket got;
  w.dev_b.set_ip_sink([&](IpPacket&& p) { got = p; });
  w.dev_a.send_ip(packet_to(1, 1000));
  w.sim.run();
  EXPECT_EQ(got.payload_bytes, 1000u);
  EXPECT_EQ(got.src, 0u);
  EXPECT_EQ(w.dev_a.stats().ip_tx, 1u);
  EXPECT_EQ(w.dev_b.stats().ip_rx, 1u);
}

TEST(IpoibDevice, NoNeighborCountsDrop) {
  DevWorld w;
  w.dev_a.send_ip(packet_to(99, 100));
  w.sim.run();
  EXPECT_EQ(w.dev_a.stats().tx_no_neighbor, 1u);
  EXPECT_EQ(w.dev_b.stats().ip_rx, 0u);
}

TEST(IpoibDevice, PureAckPathIsCheaper) {
  // Zero-payload packets (pure acks) use the cheap CPU path: sending
  // many of them takes less simulated time than data packets.
  auto elapsed = [](std::uint32_t payload) {
    DevWorld w;
    int got = 0;
    w.dev_b.set_ip_sink([&](IpPacket&&) { ++got; });
    for (int i = 0; i < 100; ++i) {
      auto p = packet_to(1, payload);
      w.dev_a.send_ip(std::move(p));
    }
    w.sim.run();
    EXPECT_EQ(got, 100);
    return w.sim.now();
  };
  EXPECT_LT(elapsed(0), elapsed(1500));
}

TEST(IpoibDevice, TxCpuSerializesBackToBackPackets) {
  DevWorld w;
  std::vector<sim::Time> arrivals;
  w.dev_b.set_ip_sink([&](IpPacket&&) { arrivals.push_back(w.sim.now()); });
  for (int i = 0; i < 10; ++i) w.dev_a.send_ip(packet_to(1, 2000));
  w.sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  // Steady-state spacing is at least the per-packet CPU cost (4 us) +
  // per-byte cost (2 us for 2000 B).
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i] - arrivals[i - 1], 5'500u);
  }
}

TEST(IpoibDevice, ConnectedModeCarriesJumboIpPackets) {
  IpoibConfig cfg;
  cfg.mode = Mode::kConnected;
  cfg.mtu = kConnectedIpMtu;
  DevWorld w(cfg);
  IpPacket got;
  w.dev_b.set_ip_sink([&](IpPacket&& p) { got = p; });
  w.dev_a.send_ip(packet_to(1, 65'000));
  w.sim.run();
  EXPECT_EQ(got.payload_bytes, 65'000u);
  // One IP packet, many IB packets on the wire.
  EXPECT_GT(w.hca_b.stats().pkts_rx, 30u);
}

TEST(IpoibDevice, DatagramModeRecvPoolRefills) {
  DevWorld w;
  int got = 0;
  w.dev_b.set_ip_sink([&](IpPacket&&) { ++got; });
  // Far more packets than the initial prepost (512): reposting must
  // keep up with zero drops on the lossless fabric.
  for (int i = 0; i < 2000; ++i) w.dev_a.send_ip(packet_to(1, 500));
  w.sim.run();
  EXPECT_EQ(got, 2000);
}

}  // namespace
}  // namespace ibwan::ipoib
