// NAS kernel tests at class S scale (fast) asserting completion and the
// Figure 12 sensitivity ordering at class A/B scale where needed.
#include "apps/nas.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "mpi/mpi.hpp"

namespace ibwan::apps {
namespace {

using namespace ibwan::sim::literals;
using core::Testbed;

double run_one(const NasBenchmark& bench, int per_cluster,
               sim::Duration delay) {
  Testbed tb(per_cluster, delay);
  mpi::Job job(tb.fabric(),
               mpi::Job::split_placement(tb.fabric(), per_cluster));
  return run_nas(job, bench);
}

TEST(Nas, AllKernelsCompleteAtClassS) {
  NasConfig cfg{.cls = NasClass::kS};
  for (const auto& bench :
       {make_is(cfg), make_ft(cfg), make_cg(cfg), make_mg(cfg),
        make_ep(cfg), make_lu(cfg), make_bt(cfg)}) {
    const double secs = run_one(bench, 4, 0);
    EXPECT_GT(secs, 0.0) << bench.name;
    EXPECT_LT(secs, 30.0) << bench.name;
  }
}

TEST(Nas, KernelsCompleteOnNonSquareGrids) {
  // LU/BT build a 2-D process grid; 2*3 and 2*1 ranks exercise the
  // non-square and degenerate cases.
  NasConfig cfg{.cls = NasClass::kS, .iterations = 3};
  for (int per_cluster : {1, 3}) {
    for (auto make : {make_lu, make_bt}) {
      const double secs = run_one(make(cfg), per_cluster, 0);
      EXPECT_GT(secs, 0.0);
    }
  }
}

TEST(Nas, LuIsMostDelaySensitive) {
  // Tiny strictly-ordered wavefront messages: LU should degrade at
  // least as hard as CG and much harder than FT.
  NasConfig cfg{.cls = NasClass::kA, .iterations = 2};
  auto ratio = [&](const NasBenchmark& b) {
    const double t0 = run_one(b, 4, 0);
    const double t1 = run_one(b, 4, 1000_us);
    return t1 / t0;
  };
  const double lu_ratio = ratio(make_lu(cfg));
  const double ft_ratio = ratio(make_ft(cfg));
  EXPECT_GT(lu_ratio, 3.0 * ft_ratio);
}

TEST(Nas, IterationTruncationScalesProjection) {
  NasConfig full{.cls = NasClass::kS};
  NasConfig cut{.cls = NasClass::kS, .iterations = 5};
  const NasBenchmark b_full = make_is(full);
  const NasBenchmark b_cut = make_is(cut);
  EXPECT_EQ(b_full.run_iterations, 10);
  EXPECT_EQ(b_cut.run_iterations, 5);
  const double t_full = run_one(b_full, 2, 0);
  const double t_cut = run_one(b_cut, 2, 0);
  // Projection should land near the full run.
  EXPECT_NEAR(t_cut, t_full, t_full * 0.25);
}

TEST(Nas, EpIsDelayInsensitive) {
  // Class B: EP's compute dwarfs its three tiny allreduces even at the
  // maximum emulated distance.
  NasConfig cfg{.cls = NasClass::kB};
  const double t0 = run_one(make_ep(cfg), 4, 0);
  const double t1 = run_one(make_ep(cfg), 4, 10'000_us);
  EXPECT_LT(t1, t0 * 1.10);
}

TEST(Nas, CgDegradesMoreThanIsAndFt) {
  // The Figure 12 headline at class A scale, 4+4 ranks, 1 ms delay.
  NasConfig cfg{.cls = NasClass::kA, .iterations = 3};
  auto ratio = [&](const NasBenchmark& b) {
    const double t0 = run_one(b, 4, 0);
    const double t1 = run_one(b, 4, 1000_us);
    return t1 / t0;
  };
  const double is_ratio = ratio(make_is(cfg));
  const double ft_ratio = ratio(make_ft(cfg));
  const double cg_ratio = ratio(make_cg(cfg));
  EXPECT_GT(cg_ratio, is_ratio);
  EXPECT_GT(cg_ratio, ft_ratio);
  EXPECT_GT(cg_ratio, 1.5);  // marked degradation
}

TEST(Nas, IsAndFtTolerateSmallDelays) {
  NasConfig cfg{.cls = NasClass::kA, .iterations = 3};
  for (auto make : {make_is, make_ft}) {
    const NasBenchmark b = make(cfg);
    const double t0 = run_one(b, 4, 0);
    const double t1 = run_one(b, 4, 100_us);
    EXPECT_LT(t1, t0 * 1.25) << b.name;
  }
}

}  // namespace
}  // namespace ibwan::apps
