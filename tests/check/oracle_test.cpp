// Unit tests for the analytic-oracle layer (src/check/oracles.*):
// report semantics, the closed-form latency/bandwidth formulas against
// both the committed Figure 3 numbers and live simulator runs, the
// conservation auditor on real and fabricated snapshots, and the
// "broken tolerance demonstrably fails" guarantee — the proof that the
// oracles can actually catch a wrong curve.
#include <gtest/gtest.h>

#include <string>

#include "check/oracles.hpp"
#include "check/scenario_gen.hpp"
#include "core/calibration.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"

namespace ibwan::check {
namespace {

using ib::perftest::Op;
using ib::perftest::Transport;

// --------------------------------------------------------------------------
// OracleReport semantics.
// --------------------------------------------------------------------------

TEST(OracleReport, VerdictArithmetic) {
  OracleReport r;
  r.expect_near("a", "ctx", 100.0, 101.0, 0.02);  // pass
  r.expect_near("a", "ctx", 100.0, 110.0, 0.02);  // fail
  r.expect_le("b", "ctx", 99.0, 100.0);           // pass
  r.expect_le("b", "ctx", 103.0, 100.0, 0.02);    // fail
  r.expect_ge("c", "ctx", 99.0, 100.0, 0.02);     // pass
  r.expect_ge("c", "ctx", 97.0, 100.0, 0.02);     // fail
  r.expect_eq_u64("d", "ctx", 5, 5);              // pass
  r.expect_eq_u64("d", "ctx", 5, 6);              // fail
  r.expect_true("e", "ctx", true, "ok");          // pass
  EXPECT_EQ(r.total(), 9u);
  EXPECT_EQ(r.failures(), 4u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.summary(), "9 checks, 4 failed");
}

TEST(OracleReport, NearZeroUsesAbsoluteEpsilon) {
  OracleReport r;
  r.expect_near("zero", "ctx", 0.0, 1e-12, 0.01);
  EXPECT_TRUE(r.ok());
}

TEST(OracleReport, FailureLogIsDeterministic) {
  const auto build = [] {
    OracleReport r;
    r.expect_le("bw-bound", "caseA", 120.0, 100.0);
    r.expect_eq_u64("cons", "caseB", 7, 9);
    return r.failure_log();
  };
  const std::string log = build();
  EXPECT_EQ(log, build());
  EXPECT_NE(log.find("FAIL [bw-bound] caseA"), std::string::npos);
  EXPECT_NE(log.find("FAIL [cons] caseB"), std::string::npos);
}

TEST(OracleReport, MergeAppendsChecksAndFailures) {
  OracleReport a;
  a.expect_true("x", "1", true, "");
  OracleReport b;
  b.expect_true("y", "2", false, "boom");
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.failures(), 1u);
  EXPECT_EQ(a.checks().back().oracle, "y");
}

// --------------------------------------------------------------------------
// Closed-form latency model: exact against the committed Figure 3 CSV
// (fig3_verbs_latency.csv, generated at seed 42) and against a live run
// at a WAN delay.
// --------------------------------------------------------------------------

TEST(LatencyOracle, MatchesCommittedFig3Values) {
  const net::FabricConfig fc = core::fabric_defaults(1, 1);
  const ib::HcaConfig hca;
  const struct {
    Transport t;
    Op op;
    std::uint64_t size;
    double expected_us;  // fig3_verbs_latency.csv, 3 decimals
  } rows[] = {
      {Transport::kUd, Op::kSendRecv, 1, 5.865},
      {Transport::kRc, Op::kSendRecv, 1, 5.745},
      {Transport::kRc, Op::kRdmaWrite, 1, 5.275},
      {Transport::kUd, Op::kSendRecv, 1024, 8.932},
      {Transport::kRc, Op::kSendRecv, 1024, 8.812},
      {Transport::kRc, Op::kRdmaWrite, 1024, 8.342},
  };
  for (const auto& row : rows) {
    EXPECT_NEAR(
        verbs_latency_model_us(fc, hca, row.t, row.op, row.size, 0),
        row.expected_us, 5e-4)
        << "size=" << row.size;
  }
}

TEST(LatencyOracle, MatchesLiveMeasurementAtWanDelay) {
  const sim::Duration delay = 100'000;  // 100 us
  core::Testbed tb(1, delay);
  const auto lat = ib::perftest::run_latency(
      tb.fabric(), tb.node_a(), tb.node_b(), Transport::kRc, Op::kSendRecv,
      {.msg_size = 256, .iterations = 20});
  const net::FabricConfig fc = core::fabric_defaults(1, 1);
  const double model =
      verbs_latency_model_us(fc, {}, Transport::kRc, Op::kSendRecv, 256,
                             delay);
  EXPECT_NEAR(lat.avg_us, model, 0.01 * model);
  EXPECT_GE(lat.avg_us, oneway_floor_us(fc, delay));
}

TEST(DelayOracle, FiveMicrosecondsPerKilometre) {
  EXPECT_DOUBLE_EQ(km_latency_increment_us(1.0), 5.0);
  EXPECT_DOUBLE_EQ(km_latency_increment_us(200.0), 1000.0);
  EXPECT_DOUBLE_EQ(km_latency_increment_us(2000.0), 10000.0);
}

// --------------------------------------------------------------------------
// Bandwidth oracles.
// --------------------------------------------------------------------------

TEST(UdOracle, ModelMatchesLiveRunAndIsDelayIndependent) {
  const net::FabricConfig fc = core::fabric_defaults(1, 1);
  const double model = ud_bw_model_mbps(fc, {}, 1024);
  for (sim::Duration delay : {sim::Duration{0}, sim::Duration{1'000'000}}) {
    core::Testbed tb(1, delay);
    const double measured =
        ib::perftest::run_bandwidth(tb.fabric(), tb.node_a(), tb.node_b(),
                                    Transport::kUd,
                                    {.msg_size = 1024, .iterations = 512})
            .mbytes_per_sec;
    EXPECT_NEAR(measured, model, 0.01 * model) << "delay=" << delay;
  }
}

TEST(RcOracle, BoundsBehaveWithDelayAndSize) {
  const net::FabricConfig fc = core::fabric_defaults(1, 1);
  const ib::HcaConfig hca;
  // BDP grows with delay; the window bound shrinks with delay and grows
  // with message size; the wire peak improves with size (less header).
  EXPECT_LT(bdp_bytes(fc, 0), bdp_bytes(fc, 1'000'000));
  EXPECT_GT(rc_window_bound_mbps(fc, hca, 65536, 100'000),
            rc_window_bound_mbps(fc, hca, 65536, 1'000'000));
  EXPECT_GT(rc_window_bound_mbps(fc, hca, 262144, 1'000'000),
            rc_window_bound_mbps(fc, hca, 65536, 1'000'000));
  EXPECT_GT(rc_wire_peak_mbps(fc, hca, 65536),
            rc_wire_peak_mbps(fc, hca, 1024));
}

TEST(RcOracle, LiveRunPassesAndBrokenToleranceFails) {
  const std::uint64_t size = 1u << 20;
  const int iters = 16;
  core::Testbed tb(1, 0);
  const double measured =
      ib::perftest::run_bandwidth(
          tb.fabric(), tb.node_a(), tb.node_b(), Transport::kRc,
          {.msg_size = size, .iterations = iters})
          .mbytes_per_sec;
  const net::FabricConfig fc = core::fabric_defaults(1, 1);
  const std::uint64_t total = size * iters;

  OracleReport good;
  check_rc_bw(good, "rc-1M", fc, {}, size, 0, measured, {}, total);
  EXPECT_TRUE(good.ok()) << good.failure_log();

  // A knee floor above the wire peak is unsatisfiable: the suite must
  // fail loudly, proving a mis-set tolerance cannot pass silently.
  Tolerances broken;
  broken.knee_high_frac = 1.01;
  OracleReport bad;
  check_rc_bw(bad, "rc-1M", fc, {}, size, 0, measured, broken, total);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.failure_log().find("rc-knee"), std::string::npos);
}

TEST(TcpOracle, ConnectedModeWindowCapTightensBound) {
  // In connected mode the shared RC QP caps the aggregate window at
  // rc_window * ip_mtu, however many streams or socket bytes pile on.
  OracleReport wide;
  const net::FabricConfig fc = core::fabric_defaults(1, 1);
  const sim::Duration delay = 1'000'000;
  // 4 MB/s-scale cap: 16 msgs * 2048 B / ~2 ms RTT ~ 16 MB/s. A claimed
  // 100 MB/s passes the datagram bound but must fail the CM bound.
  check_tcp_bw(wide, "datagram", fc, 1u << 20, 4, delay, 100.0);
  EXPECT_TRUE(wide.ok()) << wide.failure_log();
  OracleReport cm;
  check_tcp_bw(cm, "connected", fc, 1u << 20, 4, delay, 100.0, {},
               /*cm_mtu=*/2048, /*cm_rc_window=*/16);
  EXPECT_FALSE(cm.ok());
}

TEST(NfsOracle, ChunkWindowBindsOverWan) {
  const net::FabricConfig fc = core::fabric_defaults(2, 2);
  const ib::HcaConfig server = core::nfs_server_hca();
  // 4 KB chunks over a 1 ms pipe are window-bound far below the wire;
  // 256 KB chunks recover it. LAN ignores the chunking entirely.
  const double small = nfs_bw_bound_mbps(fc, server, 4096, 1'000'000, false);
  const double big =
      nfs_bw_bound_mbps(fc, server, 256u << 10, 1'000'000, false);
  const double wire = nfs_bw_bound_mbps(fc, server, 0, 1'000'000, false);
  EXPECT_LT(small, 0.2 * wire);
  EXPECT_GT(big, small);
  EXPECT_LE(big, wire);
  EXPECT_DOUBLE_EQ(nfs_bw_bound_mbps(fc, server, 4096, 0, true),
                   1000.0 * fc.lan_rate);
}

// --------------------------------------------------------------------------
// Conservation auditor.
// --------------------------------------------------------------------------

TEST(Conservation, PassesOnFaultedScenarioRun) {
  // Find the first generated scenario that carries a fault plan; its
  // drained snapshot must still conserve bytes and packets exactly
  // (drops are accounted, not lost).
  Scenario s;
  int index = 0;
  do {
    s = generate_scenario(42, index++);
  } while (!s.faults && index < 256);
  ASSERT_TRUE(s.faults);
  const ScenarioResult r = run_scenario(s);
  OracleReport report;
  check_conservation(report, s.id(), r.metrics, {});
  EXPECT_GT(report.total(), 0u);
  EXPECT_TRUE(report.ok()) << report.failure_log();
}

TEST(Conservation, CatchesFabricatedLeak) {
  sim::MetricsSnapshot snap;
  snap.counters.push_back(
      {"wan0/net.link/bytes_sent", sim::MetricUnit::kBytes, 100});
  snap.counters.push_back(
      {"wan0/net.link/bytes_delivered", sim::MetricUnit::kBytes, 60});
  snap.counters.push_back(
      {"wan0/net.link/bytes_dropped", sim::MetricUnit::kBytes, 10});
  snap.counters.push_back(
      {"wan0/net.link/pkts_sent", sim::MetricUnit::kPackets, 10});
  snap.counters.push_back(
      {"wan0/net.link/pkts_delivered", sim::MetricUnit::kPackets, 10});
  OracleReport report;
  check_conservation(report, "fabricated", snap, {});
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.failure_log().find("link-conservation"),
            std::string::npos);
}

TEST(Conservation, WqeAccountingModes) {
  sim::MetricsSnapshot snap;
  snap.counters.push_back(
      {"qp0/ib.rc/msgs_sent", sim::MetricUnit::kMessages, 10});
  snap.counters.push_back(
      {"qp0/ib.rc/send_completions", sim::MetricUnit::kCount, 8});
  OracleReport lax;
  check_conservation(lax, "wqe", snap, {});
  EXPECT_TRUE(lax.ok()) << lax.failure_log();  // completed <= sent
  ConservationOptions strict;
  strict.exact_rc_wqes = true;
  OracleReport exact;
  check_conservation(exact, "wqe", snap, strict);
  EXPECT_FALSE(exact.ok());  // 8 != 10
}

}  // namespace
}  // namespace ibwan::check
