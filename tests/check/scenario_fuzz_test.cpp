// Seeded scenario fuzzing (DESIGN.md §11): sweeps >= 200 generated
// scenarios per master seed through the oracle and relation catalogs,
// building a deterministic pass/fail log; the sweep runs twice
// in-process and the two logs must be byte-identical (DET004 at the
// harness level). On a failure the case is shrunk greedily and a
// one-line replay handle is printed.
//
// Custom flags (before the gtest ones):
//   --scenario <seed>:<index>   replay exactly one generated case
//   IBWAN_SEED=<n>              master seed for the sweep (default 42)
//   IBWAN_FUZZ_CASES=<n>        cases per sweep (default 200)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/properties.hpp"
#include "check/scenario_gen.hpp"

namespace ibwan::check {
namespace {

std::uint64_t g_seed = 42;       // NOLINT: test-process configuration
int g_cases = 200;               // NOLINT: test-process configuration
long g_replay_index = -1;        // NOLINT: test-process configuration

struct SweepOutcome {
  std::string log;      // one line per case + failure details
  int failures = 0;
  int first_failure = -1;
};

/// One full sweep. Everything appended to the log derives from
/// (seed, index) alone, so two sweeps must produce identical bytes.
SweepOutcome run_sweep(std::uint64_t seed, int cases) {
  SweepOutcome out;
  for (int index = 0; index < cases; ++index) {
    const Scenario s = generate_scenario(seed, index);
    OracleReport report;
    check_scenario(s, report);
    out.log += s.id() + " " + s.describe() + " -> ";
    if (report.ok()) {
      out.log += "PASS (" + std::to_string(report.total()) + " checks)\n";
    } else {
      out.log += "FAIL\n" + report.failure_log();
      ++out.failures;
      if (out.first_failure < 0) out.first_failure = index;
    }
  }
  return out;
}

bool scenario_fails(const Scenario& s) {
  OracleReport report;
  check_scenario(s, report);
  return !report.ok();
}

TEST(ScenarioFuzz, SweepIsCleanAndByteIdenticalAcrossReruns) {
  if (g_replay_index >= 0) {
    GTEST_SKIP() << "single-scenario replay requested";
  }
  const SweepOutcome first = run_sweep(g_seed, g_cases);
  std::printf("[fuzz] seed=%llu cases=%d failures=%d\n",
              static_cast<unsigned long long>(g_seed), g_cases,
              first.failures);
  if (first.failures > 0) {
    // Shrink the first failing case and print a replay handle before
    // failing the test.
    const Scenario original =
        generate_scenario(g_seed, first.first_failure);
    const Scenario minimal = shrink_scenario(original, scenario_fails);
    std::printf("[fuzz] first failure: %s\n[fuzz] shrunk to: %s\n"
                "[fuzz] replay with: scenario_fuzz_tests --scenario %s\n",
                original.describe().c_str(), minimal.describe().c_str(),
                original.id().c_str());
  }
  EXPECT_EQ(first.failures, 0) << first.log;

  const SweepOutcome second = run_sweep(g_seed, g_cases);
  // Byte-identical pass/fail log across reruns — the determinism
  // guarantee the replay workflow rests on.
  EXPECT_EQ(first.log, second.log);
}

TEST(ScenarioFuzz, ReplaySingleScenario) {
  if (g_replay_index < 0) {
    GTEST_SKIP() << "no --scenario given";
  }
  const Scenario s =
      generate_scenario(g_seed, static_cast<int>(g_replay_index));
  std::printf("[replay] %s\n", s.describe().c_str());
  OracleReport report;
  check_scenario(s, report);
  std::printf("[replay] %s\n", report.summary().c_str());
  EXPECT_TRUE(report.ok()) << report.failure_log();
}

}  // namespace
}  // namespace ibwan::check

int main(int argc, char** argv) {
  // Strip our flags before gtest parses the rest.
  // NOLINT-IBWAN(DET001): explicit user knobs, read once at startup
  if (const char* env = std::getenv("IBWAN_SEED")) {
    ibwan::check::g_seed = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("IBWAN_FUZZ_CASES")) {
    const int n = std::atoi(env);
    if (n > 0) ibwan::check::g_cases = n;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string spec;
    if (arg == "--scenario" && i + 1 < argc) {
      spec = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      --i;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      spec = arg.substr(11);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      argc -= 1;
      --i;
    }
    if (spec.empty()) continue;
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad --scenario '%s': want <seed>:<index>\n",
                   spec.c_str());
      return 2;
    }
    ibwan::check::g_seed = std::strtoull(spec.substr(0, colon).c_str(),
                                         nullptr, 10);
    ibwan::check::g_replay_index =
        std::strtol(spec.substr(colon + 1).c_str(), nullptr, 10);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
