// Tests for the metamorphic-relation catalog (src/check/properties.*):
// catalog shape, the applies() gating, bit-exactness of the noop /
// replay relations, and a clean check_scenario() sweep over the first
// generated cases of the default seed.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/properties.hpp"
#include "check/scenario_gen.hpp"

namespace ibwan::check {
namespace {

TEST(RelationCatalog, HasAtLeastFiveUniqueRelations) {
  const auto& catalog = relation_catalog();
  EXPECT_GE(catalog.size(), 5u);
  std::set<std::string> names;
  for (const auto& rel : catalog) {
    ASSERT_NE(rel.name, nullptr);
    ASSERT_NE(rel.description, nullptr);
    EXPECT_GT(std::string(rel.description).size(), 10u) << rel.name;
    ASSERT_NE(rel.applies, nullptr);
    ASSERT_NE(rel.check, nullptr);
    EXPECT_TRUE(names.insert(rel.name).second)
        << "duplicate relation name " << rel.name;
  }
}

TEST(RelationCatalog, ValueRelationsDoNotApplyToFaultedRuns) {
  // Monotonicity and the inert-plan equivalence assume a clean run; a
  // scenario carrying a fault plan must be filtered out by applies().
  Scenario s = generate_scenario(42, 0);
  s.faults = true;
  const std::set<std::string> value_relations = {
      "latency-monotone-delay", "delay-additivity", "bw-monotone-delay",
      "stream-monotone", "window-monotone", "faults-inert-noop"};
  for (const auto& rel : relation_catalog()) {
    if (value_relations.count(rel.name) != 0) {
      EXPECT_FALSE(rel.applies(s)) << rel.name;
    }
  }
}

TEST(Relations, SeedReplayIsBitExact) {
  const Scenario s = generate_scenario(42, 5);
  const ScenarioResult a = run_scenario(s);
  const ScenarioResult b = run_scenario(s);
  EXPECT_EQ(a.completed, b.completed);
  // Bit-equal, not approximately equal: the simulator is deterministic.
  EXPECT_EQ(a.value, b.value);
  ASSERT_EQ(a.metrics.counters.size(), b.metrics.counters.size());
  for (std::size_t i = 0; i < a.metrics.counters.size(); ++i) {
    EXPECT_EQ(a.metrics.counters[i].path, b.metrics.counters[i].path);
    EXPECT_EQ(a.metrics.counters[i].value, b.metrics.counters[i].value);
  }
}

TEST(Relations, InertFaultPlanIsNoop) {
  // An all-zero FaultPlanConfig installs no hooks (net/faults.hpp
  // contract), so forcing one onto a clean scenario changes nothing.
  for (int index = 0; index < 64; ++index) {
    const Scenario s = generate_scenario(42, index);
    if (s.faults) continue;
    const ScenarioResult base = run_scenario(s);
    RunOptions inert;
    inert.force_inert_plan = true;
    const ScenarioResult forced = run_scenario(s, inert);
    EXPECT_EQ(base.value, forced.value) << s.id();
    break;
  }
}

TEST(Relations, MetricsRegistryIsNoop) {
  const Scenario s = generate_scenario(42, 1);
  RunOptions with;
  RunOptions without;
  without.metrics = false;
  EXPECT_EQ(run_scenario(s, with).value, run_scenario(s, without).value);
}

TEST(CheckScenario, FirstCasesOfDefaultSeedAreClean) {
  // The full 200-case sweep lives in the fuzz binary; this is the quick
  // tier-1 smoke that the one-stop entry point stays green.
  OracleReport report;
  for (int index = 0; index < 12; ++index) {
    const Scenario s = generate_scenario(42, index);
    check_scenario(s, report);
  }
  EXPECT_GT(report.total(), 0u);
  EXPECT_TRUE(report.ok()) << report.failure_log();
}

}  // namespace
}  // namespace ibwan::check
