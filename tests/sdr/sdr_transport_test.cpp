// SDR transport behavior over the simulated WAN: clean delivery, local
// parity repair, selective-repeat fallback when loss exceeds the
// correction budget, duplicate/reorder handling, flap recovery, the
// adaptive redundancy policy, determinism, and the site-parallel
// differential (ISSUE 7).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "net/link.hpp"
#include "net/wan.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ibwan::sdr {
namespace {

using namespace ibwan::sim::literals;

constexpr std::uint64_t kChunkPayload = 2048 - kSdrHeaderBytes;

/// Two hosts across the Longbow WAN, one SDR endpoint each. Seeding
/// happens before endpoint construction so the named adaptive stream
/// binds to the test seed.
struct SdrWorld {
  explicit SdrWorld(SdrConfig cfg = {}, std::uint64_t seed = 42,
                    sim::Duration wan_delay = 0)
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        hca_a(fabric.node(fabric.node_id(net::Cluster::kA, 0)), {}),
        hca_b(fabric.node(fabric.node_id(net::Cluster::kB, 0)), {}) {
    sim.seed(seed);
    fabric.set_wan_delay(wan_delay);
    ep_a = std::make_unique<SdrEndpoint>(hca_a, cfg);
    ep_b = std::make_unique<SdrEndpoint>(hca_b, cfg);
  }

  net::Link& wan_ab() { return fabric.longbows()->wan_link_a_to_b(); }
  net::Link& wan_ba() { return fabric.longbows()->wan_link_b_to_a(); }

  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a;
  ib::Hca hca_b;
  std::unique_ptr<SdrEndpoint> ep_a;
  std::unique_ptr<SdrEndpoint> ep_b;
};

/// Drops the n-th, m-th, ... full-size (chunk-carrying) WAN packets.
/// Control datagrams are far smaller, so counting only large frames
/// targets data/parity chunks deterministically.
std::function<bool(const net::Packet&)> drop_chunks(
    std::vector<int> ordinals) {
  auto count = std::make_shared<int>(0);
  return [count, ordinals](const net::Packet& p) {
    if (p.wire_size < kChunkPayload) return false;
    ++*count;
    for (const int o : ordinals) {
      if (*count == o) return true;
    }
    return false;
  };
}

TEST(SdrTransport, CleanDeliveryConservesBytes) {
  SdrWorld w;
  const std::uint64_t bytes = 1u << 20;
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), bytes, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  const SdrStats& tx = w.ep_a->stats();
  const SdrStats& rx = w.ep_b->stats();
  EXPECT_EQ(tx.msgs_completed, 1u);
  EXPECT_EQ(tx.msgs_failed, 0u);
  EXPECT_EQ(tx.retrans_chunks_sent, 0u);
  EXPECT_EQ(rx.msgs_delivered, 1u);
  EXPECT_EQ(rx.msg_bytes_delivered, bytes);
  EXPECT_EQ(rx.decoded_bytes, bytes);
  EXPECT_EQ(rx.chunks_repaired, 0u);
  EXPECT_EQ(rx.nacks_sent, 0u);
  EXPECT_EQ(rx.data_chunks_received, tx.data_chunks_sent);
  // Every data chunk the message needs was delivered exactly once.
  const std::uint64_t chunks = (bytes + kChunkPayload - 1) / kChunkPayload;
  EXPECT_EQ(rx.data_chunks_delivered, chunks);
}

TEST(SdrTransport, SingleChunkMessage) {
  SdrWorld w;
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), 100, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ep_a->stats().data_chunks_sent, 1u);
  EXPECT_EQ(w.ep_b->stats().msg_bytes_delivered, 100u);
}

TEST(SdrTransport, ParityRepairsLossWithoutRoundTrip) {
  // One group (16 data + 2 parity); two data chunks die on the WAN.
  // Reed-Solomon repairs both locally: no NACK, no retransmission.
  SdrWorld w;
  const std::uint64_t bytes = 16 * kChunkPayload;
  w.wan_ab().set_loss_model(drop_chunks({3, 7}));
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), bytes, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  const SdrStats& rx = w.ep_b->stats();
  EXPECT_EQ(rx.chunks_repaired, 2u);
  EXPECT_EQ(rx.nacks_sent, 0u);
  EXPECT_EQ(w.ep_a->stats().retrans_chunks_sent, 0u);
  EXPECT_EQ(rx.msg_bytes_delivered, bytes);
  EXPECT_EQ(rx.data_chunks_delivered, 16u);
  EXPECT_EQ(rx.groups_decoded, 1u);
}

TEST(SdrTransport, LossBeyondBudgetFallsBackToSelectiveRepeat) {
  // Five losses in a 16+2 group exceed the r=2 budget: the receiver
  // must NACK the holes and deliver uncorrupted after retransmission.
  SdrConfig cfg;
  cfg.nack_timeout = 500 * sim::kMicrosecond;  // keep the test quick
  SdrWorld w(cfg);
  const std::uint64_t bytes = 16 * kChunkPayload;
  w.wan_ab().set_loss_model(drop_chunks({1, 4, 8, 12, 15}));
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), bytes, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  const SdrStats& tx = w.ep_a->stats();
  const SdrStats& rx = w.ep_b->stats();
  EXPECT_GE(rx.nacks_sent, 1u);
  EXPECT_EQ(tx.retrans_chunks_sent, 5u);
  EXPECT_EQ(rx.msg_bytes_delivered, bytes);
  EXPECT_EQ(rx.decoded_bytes, bytes);
  EXPECT_EQ(rx.data_chunks_delivered, 16u);
  // No corruption: deliveries are backed by receptions or repairs.
  EXPECT_LE(rx.data_chunks_delivered,
            rx.data_chunks_received + rx.chunks_repaired);
}

TEST(SdrTransport, LostDoneIsReplayedOnProbe) {
  // The receiver's DONE dies on the return path; the sender's probe
  // makes the receiver replay it from completed-transfer state. Late
  // arrivals for the finished message count as duplicates, not data.
  SdrConfig cfg;
  cfg.probe_timeout = 1 * sim::kMillisecond;
  SdrWorld w(cfg);
  auto count = std::make_shared<int>(0);
  w.wan_ba().set_loss_model([count](const net::Packet& p) {
    if (p.wire_size >= kChunkPayload) return false;  // only control
    ++*count;
    return *count == 1;  // the first DONE
  });
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), 8 * kChunkPayload, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(w.ep_a->stats().probes_sent, 1u);
  EXPECT_EQ(w.ep_b->stats().dones_sent, 2u);
  EXPECT_EQ(w.ep_a->stats().msgs_completed, 1u);
  EXPECT_EQ(w.ep_b->stats().msgs_delivered, 1u);
}

TEST(SdrTransport, JitterReorderingIsHarmless) {
  // Per-packet jitter reorders chunk arrivals; the receive bitmap is
  // order-independent, so delivery and byte conservation must hold.
  net::FaultPlanConfig plan;
  plan.jitter_max = 50 * sim::kMicrosecond;
  SdrConfig cfg;
  SdrWorld w(cfg, /*seed=*/7, /*wan_delay=*/100 * sim::kMicrosecond);
  w.fabric.longbows()->apply_faults(plan);
  const std::uint64_t bytes = 64 * kChunkPayload;
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), bytes, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  const SdrStats& rx = w.ep_b->stats();
  EXPECT_EQ(rx.msg_bytes_delivered, bytes);
  EXPECT_EQ(rx.decoded_bytes, bytes);
  EXPECT_LE(rx.data_chunks_received + rx.parity_chunks_received +
                rx.dup_chunks,
            w.ep_a->stats().data_chunks_sent +
                w.ep_a->stats().parity_chunks_sent +
                w.ep_a->stats().retrans_chunks_sent);
}

TEST(SdrTransport, FlapMidTransferRecovers) {
  // A link flap kills every chunk in flight on the WAN; selective
  // repeat must fill the crater and deliver the full message.
  net::FaultPlanConfig plan;
  plan.flaps.push_back({.down_at = 200 * sim::kMicrosecond,
                        .down_for = 100 * sim::kMicrosecond});
  SdrConfig cfg;
  cfg.nack_timeout = 500 * sim::kMicrosecond;
  SdrWorld w(cfg, /*seed=*/5);
  w.fabric.longbows()->apply_faults(plan);
  const std::uint64_t bytes = 1u << 20;  // ~1.1 ms of wire time
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), bytes, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  const SdrStats& tx = w.ep_a->stats();
  const SdrStats& rx = w.ep_b->stats();
  EXPECT_GT(tx.retrans_chunks_sent + rx.chunks_repaired, 0u);
  EXPECT_EQ(rx.msg_bytes_delivered, bytes);
  EXPECT_EQ(rx.decoded_bytes, bytes);
}

TEST(SdrTransport, SeveredWanFailsTheSend) {
  // Nothing crosses in either direction: the probe budget must bound
  // the retry effort and fail the message instead of hanging the run.
  SdrConfig cfg;
  cfg.max_probes = 3;
  SdrWorld w(cfg);
  w.wan_ab().set_loss_model([](const net::Packet&) { return true; });
  w.wan_ba().set_loss_model([](const net::Packet&) { return true; });
  bool called = false;
  bool ok = true;
  w.ep_a->send(w.ep_b->dest(), 32 * kChunkPayload, [&](bool s) {
    called = true;
    ok = s;
  });
  w.sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(w.ep_a->stats().msgs_failed, 1u);
  EXPECT_EQ(w.ep_a->stats().msgs_completed, 0u);
}

TEST(SdrTransport, AdaptivePolicyRaisesParityUnderLoss) {
  net::FaultPlanConfig plan;
  plan.ge.p_good_to_bad = 0.05;
  plan.ge.p_bad_to_good = 0.2;
  plan.ge.loss_good = 0.05;
  plan.ge.loss_bad = 0.5;
  SdrConfig cfg;
  cfg.adaptive = true;
  cfg.nack_timeout = 500 * sim::kMicrosecond;
  SdrWorld w(cfg, /*seed=*/42);
  w.fabric.longbows()->apply_faults(plan);
  // Messages sent back to back; each DONE's loss feedback feeds the
  // EWMA, so later messages carry parity while the first cannot.
  const std::uint64_t bytes = 48 * kChunkPayload;
  int remaining = 5;
  std::function<void(bool)> chain = [&](bool) {
    if (--remaining > 0) w.ep_a->send(w.ep_b->dest(), bytes, chain);
  };
  w.ep_a->send(w.ep_b->dest(), bytes, chain);
  w.sim.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_GT(w.ep_a->loss_ewma(), 0.0);
  EXPECT_GT(w.ep_a->stats().parity_chunks_sent, 0u);
  EXPECT_GT(w.ep_a->next_parity(), 0);
}

TEST(SdrTransport, AdaptiveWithoutFaultsDrawsNothing) {
  // Faults off => zero observed loss => the dithered rounding never
  // draws from the "sdr.adaptive" stream and no parity is emitted, so
  // enabling the knob cannot perturb a clean run (determinism guard).
  SdrConfig cfg;
  cfg.adaptive = true;
  SdrWorld w(cfg);
  bool ok = false;
  w.ep_a->send(w.ep_b->dest(), 64 * kChunkPayload, [&](bool s) { ok = s; });
  w.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.ep_a->stats().parity_chunks_sent, 0u);
  EXPECT_EQ(w.ep_a->loss_ewma(), 0.0);
  EXPECT_EQ(w.ep_a->next_parity(), 0);
}

struct RunResult {
  sim::Time end = 0;
  SdrStats tx;
  SdrStats rx;
};

RunResult chaotic_run(std::uint64_t seed) {
  net::FaultPlanConfig plan;
  plan.ge.p_good_to_bad = 0.01;
  plan.ge.p_bad_to_good = 0.2;
  plan.ge.loss_good = 0.001;
  plan.ge.loss_bad = 0.3;
  plan.jitter_max = 5 * sim::kMicrosecond;
  SdrConfig cfg;
  cfg.adaptive = true;
  cfg.nack_timeout = 500 * sim::kMicrosecond;
  SdrWorld w(cfg, seed, /*wan_delay=*/1 * sim::kMillisecond);
  w.fabric.longbows()->apply_faults(plan);
  int left = 3;
  std::function<void(bool)> chain = [&](bool) {
    if (--left > 0) w.ep_a->send(w.ep_b->dest(), 100 * kChunkPayload, chain);
  };
  w.ep_a->send(w.ep_b->dest(), 100 * kChunkPayload, chain);
  w.sim.run();
  return {w.sim.now(), w.ep_a->stats(), w.ep_b->stats()};
}

bool stats_equal(const SdrStats& a, const SdrStats& b) {
  return a.msgs_initiated == b.msgs_initiated &&
         a.msgs_completed == b.msgs_completed &&
         a.msgs_failed == b.msgs_failed &&
         a.data_chunks_sent == b.data_chunks_sent &&
         a.parity_chunks_sent == b.parity_chunks_sent &&
         a.retrans_chunks_sent == b.retrans_chunks_sent &&
         a.chunk_bytes_sent == b.chunk_bytes_sent &&
         a.nacks_received == b.nacks_received &&
         a.probes_sent == b.probes_sent &&
         a.data_chunks_received == b.data_chunks_received &&
         a.parity_chunks_received == b.parity_chunks_received &&
         a.dup_chunks == b.dup_chunks &&
         a.chunks_repaired == b.chunks_repaired &&
         a.data_chunks_delivered == b.data_chunks_delivered &&
         a.decoded_bytes == b.decoded_bytes &&
         a.groups_decoded == b.groups_decoded &&
         a.nacks_sent == b.nacks_sent && a.dones_sent == b.dones_sent &&
         a.msgs_delivered == b.msgs_delivered &&
         a.msg_bytes_delivered == b.msg_bytes_delivered &&
         a.msgs_abandoned == b.msgs_abandoned;
}

TEST(SdrTransport, DeterministicUnderChaos) {
  const RunResult one = chaotic_run(1337);
  const RunResult two = chaotic_run(1337);
  EXPECT_EQ(one.end, two.end);
  EXPECT_TRUE(stats_equal(one.tx, two.tx));
  EXPECT_TRUE(stats_equal(one.rx, two.rx));
  // A different seed sees different loss: the run must actually be
  // exercising the fault plan for the comparison above to mean much.
  const RunResult other = chaotic_run(4242);
  EXPECT_NE(one.end, other.end);
}

RunResult testbed_run(int par_sites) {
  net::FaultPlanConfig plan;
  plan.ge.p_good_to_bad = 0.002;
  plan.ge.p_bad_to_good = 0.1;
  plan.ge.loss_good = 0.0001;
  plan.ge.loss_bad = 0.2;
  core::Testbed tb(core::TestbedOptions{.nodes_a = 1,
                                        .nodes_b = 1,
                                        .wan_delay = 1 * sim::kMillisecond,
                                        .seed = 42,
                                        .faults = &plan,
                                        .par_sites = par_sites});
  ib::Hca hca_a(tb.fabric().node(tb.node_a()), {});
  ib::Hca hca_b(tb.fabric().node(tb.node_b()), {});
  SdrConfig cfg;
  cfg.nack_timeout = 500 * sim::kMicrosecond;
  SdrEndpoint ep_a(hca_a, cfg);
  SdrEndpoint ep_b(hca_b, cfg);
  // Traffic in both directions at once: the site-parallel engine must
  // reproduce the sequential interleaving exactly (DESIGN.md §13).
  ep_a.send(ep_b.dest(), 60 * kChunkPayload);
  ep_b.send(ep_a.dest(), 60 * kChunkPayload);
  tb.run();
  RunResult r;
  r.end = tb.now();
  r.tx = ep_a.stats();
  r.rx = ep_b.stats();
  return r;
}

TEST(SdrConfigValidate, AcceptsDefaultsAndBoundaryGroups) {
  EXPECT_EQ(validate(SdrConfig{}), "");
  SdrConfig max_group;
  max_group.group_data_chunks = 251;
  max_group.parity_per_group = 4;
  max_group.adaptive_max_parity = 4;  // k + max(r) == 255 exactly
  EXPECT_EQ(validate(max_group), "");
}

TEST(SdrConfigValidate, RejectsOutOfRangeGroupShapes) {
  // The chunk header carries k/r as uint16 and a GF(2^8) group holds
  // at most 255 symbols; these used to truncate silently at encode.
  SdrConfig zero_k;
  zero_k.group_data_chunks = 0;
  EXPECT_NE(validate(zero_k), "");

  SdrConfig huge_k;
  huge_k.group_data_chunks = 70000;  // would wrap as uint16
  EXPECT_NE(validate(huge_k), "");

  SdrConfig negative_parity;
  negative_parity.parity_per_group = -1;
  EXPECT_NE(validate(negative_parity), "");

  SdrConfig overfull;
  overfull.group_data_chunks = 200;
  overfull.parity_per_group = 100;  // k + r > 255
  EXPECT_NE(validate(overfull), "");

  SdrConfig adaptive_overfull;
  adaptive_overfull.group_data_chunks = 200;
  adaptive_overfull.adaptive = true;
  adaptive_overfull.adaptive_max_parity = 100;
  EXPECT_NE(validate(adaptive_overfull), "");
}

TEST(SdrTransport, SiteParallelMatchesSequential) {
  const RunResult seq = testbed_run(1);
  const RunResult par = testbed_run(2);
  EXPECT_EQ(seq.end, par.end);
  EXPECT_TRUE(stats_equal(seq.tx, par.tx));
  EXPECT_TRUE(stats_equal(seq.rx, par.rx));
  EXPECT_GT(seq.tx.msgs_completed + seq.tx.msgs_failed, 0u);
}

}  // namespace
}  // namespace ibwan::sdr
