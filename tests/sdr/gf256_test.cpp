// GF(2^8) field axioms and the MDS property of the SDR erasure codec:
// encode -> erase any <= r shards -> decode must roundtrip for both the
// XOR (r = 1) and Reed-Solomon schemes (ISSUE 7 decoder edge cases).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sdr/code.hpp"
#include "sdr/gf256.hpp"
#include "sim/rng.hpp"

namespace ibwan::sdr {
namespace {

using Shards = std::vector<std::vector<std::uint8_t>>;

Shards random_shards(sim::Rng& rng, int k, std::size_t len) {
  Shards data(static_cast<std::size_t>(k));
  for (auto& shard : data) {
    shard.resize(len);
    for (auto& b : shard) {
      b = static_cast<std::uint8_t>(rng.uniform(256));
    }
  }
  return data;
}

TEST(Gf256, FieldAxioms) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(gf::mul(a, b), gf::mul(b, a));
    EXPECT_EQ(gf::mul(a, gf::mul(b, c)), gf::mul(gf::mul(a, b), c));
    EXPECT_EQ(gf::mul(a, gf::add(b, c)),
              gf::add(gf::mul(a, b), gf::mul(a, c)));
    EXPECT_EQ(gf::mul(a, 1), a);
    EXPECT_EQ(gf::add(a, a), 0);
    if (a != 0) {
      EXPECT_EQ(gf::mul(a, gf::inv(a)), 1);
      if (b != 0) {
        EXPECT_EQ(gf::mul(gf::div(a, b), b), a);
      }
    }
  }
}

TEST(Gf256, EffectiveParityPerScheme) {
  EXPECT_EQ(effective_parity(Scheme::kNone, 4), 0);
  EXPECT_EQ(effective_parity(Scheme::kXor, 4), 1);
  EXPECT_EQ(effective_parity(Scheme::kXor, 0), 0);
  EXPECT_EQ(effective_parity(Scheme::kRs, 4), 4);
}

TEST(Gf256, RecoverableIsMds) {
  // 12 of 16 data shards present: 4 erasures need 4 parity shards.
  EXPECT_FALSE(recoverable(Scheme::kRs, 16, 12, 3));
  EXPECT_TRUE(recoverable(Scheme::kRs, 16, 12, 4));
  EXPECT_TRUE(recoverable(Scheme::kRs, 16, 16, 0));
  EXPECT_FALSE(recoverable(Scheme::kNone, 16, 15, 8));
  EXPECT_TRUE(recoverable(Scheme::kXor, 16, 15, 1));
}

TEST(Gf256, XorRepairsSingleErasure) {
  sim::Rng rng(11);
  Codec codec(Scheme::kXor, 8, 1);
  const Shards data = random_shards(rng, 8, 128);
  Shards parity;
  codec.encode(data, &parity);
  ASSERT_EQ(parity.size(), 1u);
  for (int erase = 0; erase < 8; ++erase) {
    Shards shards = data;
    shards.push_back(parity[0]);
    shards[static_cast<std::size_t>(erase)].clear();
    ASSERT_TRUE(codec.decode(&shards));
    EXPECT_EQ(shards[static_cast<std::size_t>(erase)],
              data[static_cast<std::size_t>(erase)]);
  }
}

TEST(Gf256, RsExhaustiveSmallErasurePatterns) {
  // k=4, r=2: every erasure pattern of up to 2 of the 6 shards decodes.
  sim::Rng rng(13);
  Codec codec(Scheme::kRs, 4, 2);
  const Shards data = random_shards(rng, 4, 64);
  Shards parity;
  codec.encode(data, &parity);
  for (int e1 = 0; e1 < 6; ++e1) {
    for (int e2 = e1; e2 < 6; ++e2) {
      Shards shards = data;
      shards.insert(shards.end(), parity.begin(), parity.end());
      shards[static_cast<std::size_t>(e1)].clear();
      shards[static_cast<std::size_t>(e2)].clear();
      ASSERT_TRUE(codec.decode(&shards)) << "erased " << e1 << "," << e2;
      for (int d = 0; d < 4; ++d) {
        EXPECT_EQ(shards[static_cast<std::size_t>(d)],
                  data[static_cast<std::size_t>(d)])
            << "erased " << e1 << "," << e2 << " shard " << d;
      }
    }
  }
}

TEST(Gf256, RsPropertyRandomErasures) {
  // Property: for random (k, r) geometries and random erasure patterns
  // of exactly r shards, encode -> erase -> decode roundtrips.
  sim::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = static_cast<int>(rng.uniform(1, 24));
    const int r = static_cast<int>(rng.uniform(1, 8));
    Codec codec(Scheme::kRs, k, r);
    const Shards data = random_shards(rng, k, 32);
    Shards parity;
    codec.encode(data, &parity);
    Shards shards = data;
    shards.insert(shards.end(), parity.begin(), parity.end());
    // Erase exactly r distinct shards (the correction budget's edge).
    int erased = 0;
    while (erased < r) {
      const auto victim =
          static_cast<std::size_t>(rng.uniform(static_cast<std::uint64_t>(k + r)));
      if (shards[victim].empty()) continue;
      shards[victim].clear();
      ++erased;
    }
    ASSERT_TRUE(codec.decode(&shards)) << "k=" << k << " r=" << r;
    for (int d = 0; d < k; ++d) {
      EXPECT_EQ(shards[static_cast<std::size_t>(d)],
                data[static_cast<std::size_t>(d)])
          << "k=" << k << " r=" << r << " shard " << d;
    }
  }
}

TEST(Gf256, RsRefusesBeyondBudget) {
  // r+1 erasures exceed the MDS bound: decode reports failure and does
  // not fabricate data.
  sim::Rng rng(99);
  Codec codec(Scheme::kRs, 8, 2);
  const Shards data = random_shards(rng, 8, 16);
  Shards parity;
  codec.encode(data, &parity);
  Shards shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  shards[0].clear();
  shards[3].clear();
  shards[9].clear();
  EXPECT_FALSE(codec.decode(&shards));
  EXPECT_TRUE(shards[0].empty());
  EXPECT_TRUE(shards[3].empty());
}

}  // namespace
}  // namespace ibwan::sdr
