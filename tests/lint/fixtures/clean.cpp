// Clean fixture: deterministic-by-construction code. The driver
// asserts zero findings, active or suppressed.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.hpp"

namespace ibwan::test {

struct Emitter {
  std::unordered_map<std::uint64_t, std::uint64_t> pending_;
  std::map<std::string, std::uint64_t> by_name_;

  // Ordered-map iteration may emit freely.
  void dump() const {
    for (const auto& [name, v] : by_name_) {
      std::printf("%s=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    }
  }

  // Unordered iteration is fine when the body is effect-free
  // (sort-before-act idiom).
  std::vector<std::uint64_t> sorted_keys() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(pending_.size());
    for (const auto& [k, v] : pending_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};

// Seeded draws through the sim RNG are fine.
std::uint64_t draw(sim::Rng& rng) { return rng.next_u64(); }

}  // namespace ibwan::test
