// DET003 fixture: ordering keyed on pointer values.
#include <map>
#include <queue>
#include <set>
#include <vector>

struct Qp {
  int id;
};

struct IdLess {
  bool operator()(const Qp* a, const Qp* b) const { return a->id < b->id; }
};

struct Registry {
  std::map<Qp*, int> by_qp_;            // EXPECT-IBWAN(DET003)
  std::set<const Qp*> active_;          // EXPECT-IBWAN(DET003)
  std::priority_queue<Qp*> heap_;       // EXPECT-IBWAN(DET003)
  std::less<Qp*> cmp_;                  // EXPECT-IBWAN(DET003)

  // Custom comparators over a stable id are fine.
  std::map<Qp*, int, IdLess> ordered_by_id_;
  std::set<const Qp*, IdLess> active_by_id_;
  // Value-position pointers are fine: only keys order iteration.
  std::map<int, Qp*> by_id_;
};
