// UNIT002 clean fixture: every legal way to spell a delay — unit
// literals, the named constants, unit-suffixed variables, an explicit
// Duration cast, and the scale-free zero.

using Duration = unsigned long long;

constexpr Duration kMicrosecond = 1000;

constexpr Duration operator""_ns(unsigned long long v) { return v; }
constexpr Duration operator""_us(unsigned long long v) {
  return v * kMicrosecond;
}

struct SimU2C {
  void schedule(Duration delay_ns, void (*cb)());
  void schedule_at(Duration at_ns, void (*cb)());
};

void tick() {}

void good_delays(SimU2C& sim, Duration gap_ns, int i) {
  sim.schedule(100_ns, &tick);
  sim.schedule_at(10_us, &tick);
  sim.schedule(2 * kMicrosecond, &tick);
  sim.schedule(gap_ns, &tick);
  sim.schedule(static_cast<Duration>(i % 97), &tick);
  sim.schedule(0, &tick);  // zero is "now": no scale to get wrong
}
