// HDR001 fixture: no include guard in this header. EXPECT-IBWAN(HDR001)
// (the missing-guard finding anchors to line 1, where this comment sits)

#include <iostream>  // EXPECT-IBWAN(HDR001)
#include <cstdint>   // fine

inline std::uint64_t fixture_id() { return 7; }
