// CONC003 fixture: mutable static state in library code.  Statics are
// process-wide, so two LPs running under --par-sites share them: at
// best the run is schedule-dependent (nondeterministic), at worst it
// is a data race.

int& drop_count_slot() {
  static int drops = 0;  // EXPECT-IBWAN(CONC003)
  return drops;
}

static long g_total_ns = 0;  // EXPECT-IBWAN(CONC003)

thread_local int t_depth = 0;  // EXPECT-IBWAN(CONC003)

void bump() {
  drop_count_slot() += 1;
  g_total_ns += t_depth;
}
