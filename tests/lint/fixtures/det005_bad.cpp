// DET005 fixture: cross-site event injection bypassing the WAN
// channel API (sim::SiteEngine / DESIGN.md §13).

struct Sim {
  void schedule(long delay, void (*cb)());
  void schedule_at(long at, void (*cb)());
};

struct Engine {
  Sim& site(int i);
};

struct Fabric {
  Sim& sim_of(int cluster);
  Sim& sim_of_node(unsigned node);
};

struct Testbed {
  Sim& sim_a();
  Sim& sim_b();
  Sim& sim_for(unsigned node);
};

void poke() {}

void inject(Engine& eng, Fabric& fab, Testbed& tb, long at_ns) {
  eng.site(1).schedule_at(at_ns, &poke);   // EXPECT-IBWAN(DET005)
  fab.sim_of(1).schedule(at_ns, &poke);    // EXPECT-IBWAN(DET005)
  fab.sim_of_node(7).schedule_at(at_ns, &poke);  // EXPECT-IBWAN(DET005)
  tb.sim_b().schedule(at_ns, &poke);       // EXPECT-IBWAN(DET005)
  tb.sim_for(2).schedule_at(at_ns, &poke);  // EXPECT-IBWAN(DET005)
}
