// CONC002 fixture: site-local resources captured into Channel::push
// callbacks.  The callback runs when the *destination* LP pops the
// event, so a captured source-site Simulator/MetricsRegistry/
// FlightRecorder/Rng is touched from another thread under --par-sites.

struct Simulator {
  void poke();
};
struct MetricsRegistry {
  void bump();
};
struct Rng {
  unsigned next();
};

struct ChannelB2 {
  template <typename F>
  void push(long arrival_ns, F cb);
};

void capture_sim(ChannelB2& ch, Simulator& sim, long at_ns) {
  ch.push(at_ns, [&sim] {  // EXPECT-IBWAN(CONC002)
    sim.poke();
  });
}

void capture_metrics(ChannelB2& ch, MetricsRegistry& mreg, long at_ns) {
  ch.push(at_ns, [&mreg] {  // EXPECT-IBWAN(CONC002)
    mreg.bump();
  });
}

void capture_rng(ChannelB2& ch, Rng& dice, long at_ns) {
  ch.push(at_ns, [dice]() mutable {  // EXPECT-IBWAN(CONC002)
    (void)dice;
  });
}
