// INV001 fixture (declaration half): a link-like stats block whose
// fields participate in the bytes_sent == delivered + dropped
// conservation invariant. Writes are only legal from this header's
// translation-unit pair (inv001_counters.cpp).
#pragma once

#include <cstdint>

namespace fixture {

struct WireStats {
  std::uint64_t fx_bytes_sent = 0;       // lint:conserved
  std::uint64_t fx_bytes_delivered = 0;  // lint:conserved
  std::uint64_t fx_bytes_dropped = 0;    // lint:conserved
  std::uint64_t unrelated = 0;           // not conserved: writable anywhere
};

class Wire {
 public:
  void on_send(std::uint64_t n);
  const WireStats& stats() const { return stats_; }
  WireStats& mutable_stats() { return stats_; }

 private:
  WireStats stats_;
};

}  // namespace fixture
