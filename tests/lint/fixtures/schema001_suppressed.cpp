// SCHEMA001 suppressed fixture: an intentionally undocumented metric,
// e.g. a short-lived debug counter that must not enter the schema.

struct CounterS1;

struct RegS1 {
  CounterS1& counter(const char* scope, const char* name);
};

void register_debug(RegS1& m) {
  const char* scope = "node0/fix.layer";
  // NOLINT-IBWAN(SCHEMA001): temporary debug counter for the flaky
  // replay investigation; removed before the schema freeze
  m.counter(scope, "debug_probe");
}
