// CONC002 clean fixture: the sanctioned Channel::push patterns —
// capture plain data (packet copies, ids, byte counts) and resolve any
// site-local resource on the receiving side (cf. net::Link's channel
// mode, which captures only `this` and the packet).

struct PacketC2 {
  unsigned id;
};

struct ChannelC2 {
  template <typename F>
  void push(long arrival_ns, F cb);
};

struct LinkC2 {
  ChannelC2* channel_;
  void deliver(PacketC2 p);

  void forward(PacketC2 pkt, long arrival_ns) {
    // Plain data + this: the destination object resolves its own
    // resources when the callback runs.
    channel_->push(arrival_ns, [this, pkt] { deliver(pkt); });
  }
};

struct WorkQueueC2 {
  void push(PacketC2 p);  // an ordinary container push is not a crossing
};

void enqueue(WorkQueueC2& q, PacketC2 p) { q.push(p); }
