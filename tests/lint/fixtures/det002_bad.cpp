// DET002 fixture: effectful iteration over unordered containers.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Sim {
  void schedule(int, int) {}
};

struct Demux {
  std::unordered_map<int, int> by_qpn_;
  std::unordered_set<std::string> names_;
  Sim sim_;

  void drain_badly() {
    for (const auto& [qpn, qp] : by_qpn_) {  // EXPECT-IBWAN(DET002)
      sim_.schedule(qpn, qp);
    }
  }

  void dump_badly() {
    for (const auto& n : names_) {  // EXPECT-IBWAN(DET002)
      std::printf("%s\n", n.c_str());
    }
  }

  void iterate_badly() {
    for (auto it = by_qpn_.begin(); it != by_qpn_.end(); ++it) {  // EXPECT-IBWAN(DET002)
      std::printf("%d\n", it->first);
    }
  }

  // The sort-before-act idiom: collecting keys has no side effects, so
  // neither loop is a finding.
  void drain_well() {
    std::vector<int> keys;
    keys.reserve(by_qpn_.size());
    for (const auto& [qpn, qp] : by_qpn_) keys.push_back(qpn);
    // (sort keys, then act — acting loop iterates the sorted vector)
    for (int k : keys) sim_.schedule(k, by_qpn_[k]);
  }
};
