// SCHEMA001 fixture: metric/trace names drifting from the documented
// schema (fixtures/metrics_docs.md stands in for docs/METRICS.md).

struct MetricsRegistryB;
struct CounterB;

namespace stdfix {
const char* to_string(int);
}

struct RegB {
  CounterB& counter(const char* scope, const char* name);
  CounterB& gauge(const char* scope, const char* name);
};

void register_bad(RegB& m) {
  const char* scope = "node3/fix.layer";
  m.counter(scope, "undocumented_metric");  // EXPECT-IBWAN(SCHEMA001)
  // Documented as a gauge; registering it as a counter is drift too.
  m.counter(scope, "wrong_kind");  // EXPECT-IBWAN(SCHEMA001)
}

const char* trace_kind_name(int kind) {
  switch (kind) {
    case 0:
      return "good-trace";
    case 1:
      return "rogue-trace";  // EXPECT-IBWAN(SCHEMA001)
  }
  return "?";
}
