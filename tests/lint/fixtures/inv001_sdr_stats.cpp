// INV001 fixture (owning half, SDR-shaped): the endpoint's own
// accounting, as sdr.cpp does for sdr::SdrStats — no findings here.
#include "inv001_sdr_stats.hpp"

namespace fixture {

void FxSdrEndpoint::on_chunk_sent(bool parity) {
  if (parity) {
    stats_.fx_parity_chunks_sent++;   // owning unit: allowed
  } else {
    stats_.fx_data_chunks_sent++;     // owning unit: allowed
  }
}

void FxSdrEndpoint::on_delivered(std::uint64_t bytes) {
  stats_.fx_msg_bytes_delivered += bytes;  // owning unit: allowed
  ++stats_.fx_chunks_reconstructed;        // owning unit: allowed
}

}  // namespace fixture
