// DET005 clean fixture: the legal patterns — scheduling into your own
// site's simulator, and crossing sites through the channel API.

struct Sim {
  void schedule(long delay, void (*cb)());
  void schedule_at(long at, void (*cb)());
};

struct Channel {
  void push(long arrival, void (*cb)());
};

struct Engine {
  Sim& site(int i);
};

void cb() {}

// A site's own code holding its own simulator reference is fine.
void local_work(Sim& my_site, long delay_ns) {
  my_site.schedule(delay_ns, &cb);
  my_site.schedule_at(delay_ns + 25, &cb);
}

// Crossing the LP boundary through the channel is the supported path.
void cross_site(Channel& ch, long now, long lookahead) {
  ch.push(now + lookahead, &cb);
}

// Reading a selected site (metrics, clocks) is not an injection.
struct Metrics {
  unsigned long events;
};
Metrics read_out(Engine& eng);
unsigned long peek(Engine& eng) { return read_out(eng).events; }
