// CONC002 suppressed fixture: a sequential-mode-only path may capture
// the simulator if it says why that is safe.

struct Simulator {
  void poke();
};

struct ChannelS2 {
  template <typename F>
  void push(long arrival_ns, F cb);
};

void sequential_only(ChannelS2& ch, Simulator& sim, long at_ns) {
  // NOLINT-IBWAN(CONC002): sequential fallback path, never runs under
  // --par-sites (guarded by SiteEngine::parallel() == false)
  ch.push(at_ns, [&sim] { sim.poke(); });
}
