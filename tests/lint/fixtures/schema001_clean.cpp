// SCHEMA001 clean fixture: registrations and trace kinds that match
// fixtures/metrics_docs.md exactly, including the production idiom of
// building the scope from a node prefix at runtime.

struct CounterC;

struct RegC {
  CounterC& counter(const char* scope, const char* name);
  CounterC& counter3(const char* scope, const char* name, int unit);
};

namespace sim_fix {
enum MetricUnit { kCount, kBytes };
}

struct RegC2 {
  CounterC& counter(const char* scope, const char* name,
                    sim_fix::MetricUnit unit);
};

void register_good(RegC& m, RegC2& m2, const char* node_prefix) {
  const char* scope = "node7/fix.layer";
  m.counter(scope, "good_metric");
  m2.counter(scope, "good_bytes", sim_fix::kBytes);
  (void)node_prefix;
}
