// UNIT002 suppressed fixture: a raw literal may stay if the author
// says what unit it is and why the helper is not used.

struct SimU2S {
  void schedule(long delay_ns, void (*cb)());
};

void pulse() {}

void legacy_delay(SimU2S& sim) {
  // NOLINT-IBWAN(UNIT002): matches the hard-coded 128 ns cycle in the
  // seed bench; changing the spelling would churn the golden CSVs
  sim.schedule(128, &pulse);
}
