// SCHEMA002 suppressed fixture: a legacy leaf name kept verbatim for
// dashboard compatibility. It is documented (so SCHEMA001 is quiet)
// and the grammar violation is acknowledged in place.

struct CounterH;

struct RegH {
  CounterH& counter(const char* scope, const char* name);
};

void register_legacy(RegH& m) {
  const char* scope = "node4/fix.layer";
  // NOLINT-IBWAN(SCHEMA002): leaf name predates the naming grammar;
  // dashboards key on it, rename tracked separately
  m.counter(scope, "Hidden_Leaf");
}
