// CONC001 fixture: cross-site scheduling through a call chain.  DET005
// only sees `site(i).schedule(...)` in one expression; CONC001 uses the
// pass-1 call graph to catch methods and free functions that reach
// Simulator::schedule transitively.

struct Sim {
  void schedule(long delay_ns, void (*cb)());
  // A method that schedules: calling it on a selected site injects an
  // event without crossing a Channel.
  void fire_later(long delay_ns, void (*cb)()) { schedule(delay_ns, cb); }
};

struct Engine {
  Sim& site(int i);
};

void poke() {}

// Free function that schedules into whatever simulator it is handed.
void relay_into(Sim& s, long d_ns) { s.schedule(d_ns, &poke); }

// Two hops: still reachable in the call graph.
void relay_hop(Sim& s, long d_ns) { relay_into(s, d_ns); }

void chain_form(Engine& eng, long d_ns) {
  eng.site(1).fire_later(d_ns, &poke);  // EXPECT-IBWAN(CONC001)
}

void arg_form(Engine& eng, long d_ns) {
  relay_into(eng.site(2), d_ns);  // EXPECT-IBWAN(CONC001)
  relay_hop(eng.site(3), d_ns);   // EXPECT-IBWAN(CONC001)
}
