// UNIT001 clean fixture: same-unit arithmetic, and mixed-dimension
// expressions whose multiplicative terms make the dimensions line up.

unsigned long same_unit(unsigned long busy_ns, unsigned long idle_ns) {
  return busy_ns + idle_ns;
}

unsigned long accumulate(unsigned long total_bytes,
                         unsigned long chunk_bytes) {
  total_bytes += chunk_bytes;
  return total_bytes;
}

// bytes = rate * time: the `*` makes the right-hand term's dimension
// differ from its leftmost operand, so the heuristic stands down.
unsigned long window(unsigned long rate_per_s, unsigned long span_ns) {
  unsigned long win_bytes = rate_per_s * span_ns / 1000000000ull;
  return win_bytes;
}

// Explicit conversion: the scale factor is visible.
unsigned long to_us(unsigned long span_ns) {
  unsigned long span_us = span_ns / 1000;
  return span_us;
}
