// CONC003 clean fixture: immutable statics and static functions are
// fine — only mutable shared state breaks under --par-sites.

static constexpr int kMaxPorts = 8;
static const char* const kEngineName = "ibwan";

// A static (internal-linkage) function is not static *state*.
static int clamp_ports(int n) {
  return n > kMaxPorts ? kMaxPorts : n;
}

// Static member constants are immutable too.
struct LimitsC3 {
  static constexpr long kWarnLimit = 8;
};

// Mutable state owned by an instance is the approved shape: one per
// site, no sharing.
struct PerSiteC3 {
  long events_fired = 0;
  void fire() { events_fired += clamp_ports(1); }
};
