// CONC003 suppressed fixture: process-wide knobs written once before
// any engine starts may keep a static slot if they say so.

int& verbosity_slot() {
  // NOLINT-IBWAN(CONC003): CLI knob, written once in bench::init before
  // any simulator is constructed; read-only afterwards
  static int level = 0;
  return level;
}
