// LNT001 fixture: a suppression with no reason is itself a finding
// (and still suppresses its target rule, so only LNT001 fires here).
#include <cstdlib>

namespace ibwan::test {

int lazy_suppression() {
  return rand();  // NOLINT-IBWAN(DET001) EXPECT-IBWAN(LNT001)
}

}  // namespace ibwan::test
