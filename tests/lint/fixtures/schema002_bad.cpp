// SCHEMA002 fixture: names that break the grammar. Layers are
// dot-separated lowercase, leaves snake_case, trace kinds kebab-case.
// The offending names are documented in fixtures/metrics_docs.md so
// only the grammar rule (not SCHEMA001 drift) fires.

struct CounterG;

struct RegG {
  CounterG& counter(const char* scope, const char* name);
};

void register_ugly(RegG& m) {
  const char* cameled = "node1/Net.Link";
  m.counter(cameled, "pkts");  // EXPECT-IBWAN(SCHEMA002)
  const char* scope = "node1/fix.layer";
  m.counter(scope, "BadLeaf");  // EXPECT-IBWAN(SCHEMA002)
}

const char* trace_kind_name(int kind) {
  switch (kind) {
    case 0:
      return "neat-trace";
    case 1:
      return "Shouty-Trace";  // EXPECT-IBWAN(SCHEMA002)
  }
  return "?";
}
