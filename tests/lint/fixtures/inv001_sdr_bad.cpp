// INV001 fixture (violating half, SDR-shaped): a bench or test
// "fixing up" FEC accounting from outside the endpoint would silently
// break the redundancy-overhead conservation oracle — the linter must
// catch every write shape used in real accounting code.
#include "inv001_sdr_stats.hpp"

namespace fixture {

void forge_fec_accounting(FxSdrEndpoint& ep) {
  ep.mutable_stats().fx_parity_chunks_sent += 4;     // EXPECT-IBWAN(INV001)
  ep.mutable_stats().fx_data_chunks_sent = 0;        // EXPECT-IBWAN(INV001)
  ep.mutable_stats().fx_chunks_reconstructed++;      // EXPECT-IBWAN(INV001)
  FxSdrStats& s = ep.mutable_stats();
  ++s.fx_msg_bytes_delivered;                        // EXPECT-IBWAN(INV001)
  s.scratch = 99;                                    // not conserved: fine
}

std::uint64_t audit_only(const FxSdrEndpoint& ep) {
  // Reads power the conservation oracle itself — always fine.
  return ep.stats().fx_data_chunks_sent +
         ep.stats().fx_parity_chunks_sent;
}

}  // namespace fixture
