// SCHEMA002 clean fixture: grammar-conforming names throughout.

struct CounterN;

struct RegN {
  CounterN& counter(const char* scope, const char* name);
};

void register_neat(RegN& m) {
  const char* scope = "node2/fix.layer";
  m.counter(scope, "snake_leaf");
}

const char* trace_kind_name(int kind) {
  switch (kind) {
    case 0:
      return "neat-trace";
  }
  return "?";
}
