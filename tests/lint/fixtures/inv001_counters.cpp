// INV001 fixture (owning half): accounting inside the declaring
// translation-unit pair is legal — no findings in this file.
#include "inv001_counters.hpp"

namespace fixture {

void Wire::on_send(std::uint64_t n) {
  stats_.fx_bytes_sent += n;       // owning unit: allowed
  stats_.fx_bytes_delivered += n;  // owning unit: allowed
}

}  // namespace fixture
