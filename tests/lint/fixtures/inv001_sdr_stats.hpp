// INV001 fixture (declaration half, SDR-shaped): mirrors the
// sdr::SdrStats accounting block — chunk counters that participate in
// the data == delivered + reconstructed + dropped conservation
// identity checked by the sdr-conservation oracle. Writes are only
// legal from this header's translation-unit pair (inv001_sdr_stats.cpp).
#pragma once

#include <cstdint>

namespace fixture {

struct FxSdrStats {
  std::uint64_t fx_data_chunks_sent = 0;     // lint:conserved
  std::uint64_t fx_parity_chunks_sent = 0;   // lint:conserved
  std::uint64_t fx_chunks_reconstructed = 0; // lint:conserved
  std::uint64_t fx_msg_bytes_delivered = 0;  // lint:conserved
  std::uint64_t scratch = 0;                 // not conserved: writable anywhere
};

class FxSdrEndpoint {
 public:
  void on_chunk_sent(bool parity);
  void on_delivered(std::uint64_t bytes);
  const FxSdrStats& stats() const { return stats_; }
  FxSdrStats& mutable_stats() { return stats_; }

 private:
  FxSdrStats stats_;
};

}  // namespace fixture
