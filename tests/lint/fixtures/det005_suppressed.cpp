// DET005 suppression fixture: wiring code that runs before the engine
// starts may inject setup events directly, with a stated reason.

struct Sim {
  void schedule_at(long at, void (*cb)());
};

struct Engine {
  Sim& site(int i);
};

void kickoff() {}

void wire(Engine& eng) {
  // NOLINT-IBWAN(DET005): wiring phase — the engine has not started,
  // so no window is open and the injection cannot race a merge
  eng.site(0).schedule_at(0, &kickoff);
}
