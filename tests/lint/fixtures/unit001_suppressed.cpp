// UNIT001 suppressed fixture: a deliberate pun (hashing mixed fields)
// may mix units if it says why.

unsigned long digest(unsigned long seen_ns, unsigned long seen_bytes) {
  // NOLINT-IBWAN(UNIT001): checksum over raw fields, not arithmetic —
  // dimensions are irrelevant to the hash
  return seen_ns + seen_bytes;
}
