// DET004 fixture: RNG draws bypassing the seeded simulator streams.
#include <cstdint>
#include <random>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ibwan::test {

std::uint64_t engine_badly() {
  std::mt19937 gen;  // EXPECT-IBWAN(DET004)
  return gen();
}

std::uint64_t engine64_badly() {
  std::mt19937_64 gen{1234};  // EXPECT-IBWAN(DET004)
  return gen();
}

std::uint64_t default_badly() {
  std::default_random_engine gen;  // EXPECT-IBWAN(DET004)
  return gen();
}

std::uint64_t rng_badly() {
  sim::Rng r;  // EXPECT-IBWAN(DET004)
  return r.next_u64();
}

std::uint64_t rng_braced_badly() {
  sim::Rng r{};  // EXPECT-IBWAN(DET004)
  return r.next_u64();
}

std::uint64_t rng_well(sim::Simulator& s) {
  sim::Rng r = s.rng_stream("workload");  // no finding: seeded stream
  sim::Rng explicit_seed(42);             // no finding: explicit seed
  return r.next_u64() ^ explicit_seed.next_u64();
}

}  // namespace ibwan::test
