// DET001 fixture: every banned nondeterminism API must be flagged.
#include <cstdlib>
#include <ctime>
#include <chrono>
#include <random>

namespace ibwan::test {

int draw_badly() {
  return rand();  // EXPECT-IBWAN(DET001)
}

void seed_badly() {
  srand(42);  // EXPECT-IBWAN(DET001)
}

long stamp_badly() {
  return time(nullptr);  // EXPECT-IBWAN(DET001)
}

long tick_badly() {
  return clock();  // EXPECT-IBWAN(DET001)
}

long chrono_badly() {
  auto t = std::chrono::system_clock::now();  // EXPECT-IBWAN(DET001)
  auto s = std::chrono::steady_clock::now();  // EXPECT-IBWAN(DET001)
  return t.time_since_epoch().count() + s.time_since_epoch().count();
}

unsigned device_badly() {
  std::random_device rd;  // EXPECT-IBWAN(DET001)
  return rd();
}

const char* env_badly() {
  return std::getenv("IBWAN_FULL");  // EXPECT-IBWAN(DET001)
}

}  // namespace ibwan::test

namespace ibwan::bench {

// getenv is allowed here: bench::init is the centralized entry hook.
void init(int, char**) {
  (void)std::getenv("IBWAN_FULL");  // no finding
}

}  // namespace ibwan::bench
