// UNIT002 fixture: raw numeric literals in schedule()/schedule_at()
// delay positions.  sim::Duration is nanoseconds, but `schedule(100,
// ...)` does not say so — the unit literals and kNanosecond-family
// constants do.

struct SimU2 {
  void schedule(long delay_ns, void (*cb)());
  void schedule_at(long at_ns, void (*cb)());
};

void fire() {}

void raw_delays(SimU2& sim) {
  sim.schedule(100, &fire);        // EXPECT-IBWAN(UNIT002)
  sim.schedule_at(10'000, &fire);  // EXPECT-IBWAN(UNIT002)
  sim.schedule(5 + 3, &fire);      // EXPECT-IBWAN(UNIT002)
}
