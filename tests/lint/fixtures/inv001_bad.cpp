// INV001 fixture (violating half): outside code poking conserved
// counters directly, bypassing the owning class's accounting.
#include "inv001_counters.hpp"

namespace fixture {

void cook_the_books(Wire& w) {
  w.mutable_stats().fx_bytes_sent += 64;      // EXPECT-IBWAN(INV001)
  w.mutable_stats().fx_bytes_delivered = 0;   // EXPECT-IBWAN(INV001)
  w.mutable_stats().fx_bytes_dropped++;       // EXPECT-IBWAN(INV001)
  w.mutable_stats().unrelated = 7;            // not conserved: no finding
}

std::uint64_t read_only(const Wire& w) {
  // Reads are always fine.
  return w.stats().fx_bytes_sent + w.stats().fx_bytes_dropped;
}

}  // namespace fixture
