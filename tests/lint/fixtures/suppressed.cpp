// Suppression fixture: real violations carrying NOLINT-IBWAN comments
// with reasons. The driver asserts this file reports ZERO active
// findings (and that --show-suppressed can still surface them).
#include <cstdlib>
#include <random>

namespace ibwan::test {

int suppressed_same_line() {
  return rand();  // NOLINT-IBWAN(DET001): fixture exercises same-line form
}

unsigned suppressed_line_above() {
  // NOLINT-IBWAN(DET001): fixture exercises the own-line form, with a
  // reason that wraps across two comment lines
  std::random_device rd;
  return rd();
}

std::uint32_t suppressed_engine() {
  std::mt19937 gen{7};  // NOLINT-IBWAN(DET004): fixture: fixed literal seed
  return gen();
}

}  // namespace ibwan::test
