// CONC001 clean fixture: reads on a selected site are fine, and
// engine-aware runners (they take the SiteEngine, so they own the
// cross-LP coordination) may receive a selected site's simulator.

struct SiteEngine;

struct SimC1 {
  void schedule(long delay_ns, void (*cb)());
  long now() const { return now_ns_; }
  long now_ns_ = 0;
};

struct EngineC1 {
  SimC1& site(int i);
};

void tick() {}

// Engine-aware: takes the SiteEngine alongside the site simulator, so
// it synchronizes LP crossings itself (like core::run_iozone).
void drive_site(SimC1& s, long d_ns, SiteEngine* eng) {
  (void)eng;
  s.schedule(d_ns, &tick);
}

long observe_only(EngineC1& eng) {
  // `now` has no path to schedule in the call graph: reading a
  // selected site's clock is not an injection.
  return eng.site(0).now();
}

void run_engine_aware(EngineC1& eng, long d_ns, SiteEngine* se) {
  drive_site(eng.site(1), d_ns, se);
}
