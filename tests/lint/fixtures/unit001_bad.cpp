// UNIT001 fixture: arithmetic and assignment mixing inferred units.
// Everything in the simulator is a plain uint64, so the only defense
// against adding nanoseconds to bytes is the `_ns`/`_bytes`/`_per_s`
// naming convention — which pass 1 turns into checkable dimensions.

unsigned long mix_dimensions(unsigned long elapsed_ns,
                             unsigned long payload_bytes) {
  return elapsed_ns + payload_bytes;  // EXPECT-IBWAN(UNIT001)
}

bool mix_compare(unsigned long deadline_ns, unsigned long quota_bytes) {
  return deadline_ns < quota_bytes;  // EXPECT-IBWAN(UNIT001)
}

void mix_rate(unsigned long goodput_per_s, unsigned long window_bytes) {
  goodput_per_s += window_bytes;  // EXPECT-IBWAN(UNIT001)
}

void mix_scale(unsigned long lat_us, unsigned long lat_ns) {
  lat_us = lat_ns;  // EXPECT-IBWAN(UNIT001)
}
