// CONC001 suppressed fixture: construction-time wiring schedules into
// sites before the engine starts; that is single-threaded and legal,
// but must say so.

struct SimS1 {
  void schedule(long delay_ns, void (*cb)());
};

struct EngineS1 {
  SimS1& site(int i);
};

void arm() {}

void prime_site(SimS1& s, long d_ns) { s.schedule(d_ns, &arm); }

void wire_up(EngineS1& eng, long d_ns) {
  // NOLINT-IBWAN(CONC001): construction-time wiring, engine not started
  prime_site(eng.site(0), d_ns);
}
