#!/usr/bin/env python3
"""Incremental-lint tests for the per-file content-hash cache.

A warm cache plus a one-file edit must re-lint exactly that file, keep
every other verdict from the cache, and produce findings identical to a
cold full run.  Wall-time is asserted with a deliberately generous
bound (warm < 50% of cold on a 40-file project) so the test stays
stable on loaded CI machines; the <10% acceptance figure is a property
of the real tree, where parse cost dwarfs cache bookkeeping.

Runs under plain python3 (ctest) or pytest.
"""

import os
import shutil
import sys
import tempfile
import time
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

from ibwan_lint import engine  # noqa: E402

N_FILES = 40

UNIT_TEMPLATE = """\
struct Sim%(i)d {
  void schedule(long delay_ns, void (*cb)());
};
void cb%(i)d() {}
void drive%(i)d(Sim%(i)d& sim, long gap_ns) {
  long warm_ns = gap_ns;
  for (int k = 0; k < 4; ++k) {
    sim.schedule(warm_ns, &cb%(i)d);
    warm_ns = warm_ns + gap_ns;
  }
}
"""

BAD_EDIT = """\
struct Sim0 {
  void schedule(long delay_ns, void (*cb)());
};
void cb0() {}
void drive0(Sim0& sim, long gap_ns) {
  (void)gap_ns;
  sim.schedule(4096, &cb0);
}
"""


def fp(findings):
    return [(os.path.basename(f.path), f.line, f.rule, f.suppressed)
            for f in findings]


class IncrementalLintTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.mkdtemp(prefix="ibwan_lint_cache_")
        self.cache = os.path.join(self.dir, ".lintcache.json")
        for i in range(N_FILES):
            with open(os.path.join(self.dir, f"unit{i:02d}.cpp"), "w") as fh:
                fh.write(UNIT_TEMPLATE % {"i": i})

    def tearDown(self):
        shutil.rmtree(self.dir, ignore_errors=True)

    def _run(self):
        t0 = time.monotonic()
        res = engine.run([self.dir], cache_path=self.cache)
        return res, time.monotonic() - t0

    def test_one_file_edit_relints_one_file(self):
        cold, cold_s = self._run()
        self.assertEqual(cold.files_linted, N_FILES)
        self.assertEqual(cold.findings, [], "seed project should be clean")

        # Introduce a UNIT002 violation in exactly one file.
        with open(os.path.join(self.dir, "unit00.cpp"), "w") as fh:
            fh.write(BAD_EDIT)

        warm, warm_s = self._run()
        self.assertEqual(warm.files_linted, 1,
                         "only the edited file should re-run pass 2")
        self.assertEqual(warm.files_cached, N_FILES - 1)
        self.assertEqual(
            [os.path.basename(p) for p in warm.changed], ["unit00.cpp"])
        self.assertEqual(
            fp(warm.findings), [("unit00.cpp", 7, "UNIT002", False)])

        # Same edit, cold cache: verdicts must agree exactly.
        os.unlink(self.cache)
        full, _ = self._run()
        self.assertEqual(fp(full.findings), fp(warm.findings))

        # Generous wall-time bound (see module docstring).
        self.assertLess(warm_s, cold_s * 0.5,
                        f"warm {warm_s:.3f}s vs cold {cold_s:.3f}s")

    def test_tool_change_invalidates_cache(self):
        self._run()
        # Forge a cache written by a different tool version.
        import json
        with open(self.cache) as fh:
            data = json.load(fh)
        data["tool"] = "0" * 64
        with open(self.cache, "w") as fh:
            json.dump(data, fh)
        res, _ = self._run()
        self.assertEqual(res.files_linted, N_FILES,
                         "a tool-digest mismatch must drop the cache")

    def test_changed_only_filters_to_edited_files(self):
        self._run()
        with open(os.path.join(self.dir, "unit00.cpp"), "w") as fh:
            fh.write(BAD_EDIT)
        with open(os.path.join(self.dir, "unit01.cpp"), "a") as fh:
            fh.write("void tail01(int x) { (void)x; }\n")
        res = engine.run([self.dir], cache_path=self.cache,
                         changed_only=True)
        self.assertEqual(sorted(os.path.basename(p) for p in res.changed),
                         ["unit00.cpp", "unit01.cpp"])
        self.assertEqual(
            fp(res.findings), [("unit00.cpp", 7, "UNIT002", False)])


if __name__ == "__main__":
    unittest.main(verbosity=2)
