#!/usr/bin/env python3
"""Fixture tests for ibwan-lint.

Every fixture under tests/lint/fixtures/ carries `EXPECT-IBWAN(RULE)`
markers on the lines where a rule must fire.  This driver runs the
linter over the corpus and asserts an exact match: each rule fires
exactly where expected (same file, same line) and nowhere else, the
suppressed fixture reports zero active findings, and the clean fixture
reports zero findings of any kind.

Runs under plain python3 (ctest) or pytest.
"""

import os
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
FIXTURES = os.path.join(REPO, "tests", "lint", "fixtures")
sys.path.insert(0, os.path.join(REPO, "tools"))

from ibwan_lint import engine  # noqa: E402
from ibwan_lint.model import EXPECT_RE  # noqa: E402
from ibwan_lint.rules import RULES  # noqa: E402


METRICS_DOCS = os.path.join(FIXTURES, "metrics_docs.md")

# Findings SCHEMA001 anchors on the docs file itself (documented rows
# that no code backs).  The .md is not lexed as C++, so it cannot carry
# EXPECT markers; the ghost rows are asserted here instead.
DOCS_SIDE_EXPECTED = {
    ("metrics_docs.md", "SCHEMA001", "fix.layer/ghost_metric"),
    ("metrics_docs.md", "SCHEMA001", "ghost-trace"),
}


def lint_corpus():
    paths = engine.discover([FIXTURES])
    files, errors = engine.parse_files(paths)
    if errors:
        raise AssertionError(f"fixture corpus failed to lex: {errors}")
    return files, engine.run_rules(files, metrics_docs=METRICS_DOCS)


def expected_markers(files):
    out = set()
    for sf in files:
        for rule, line in sf.expects:
            out.add((os.path.basename(sf.path), line, rule))
    return out


class LintFixtureTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.files, cls.findings = lint_corpus()
        cls.docs_side = [f for f in cls.findings
                         if os.path.basename(f.path) == "metrics_docs.md"]
        code = [f for f in cls.findings
                if os.path.basename(f.path) != "metrics_docs.md"]
        cls.active = {(os.path.basename(f.path), f.line, f.rule)
                      for f in code if not f.suppressed}
        cls.everything = {(os.path.basename(f.path), f.line, f.rule)
                          for f in code}

    def test_each_rule_fires_exactly_where_expected(self):
        expected = expected_markers(self.files)
        missing = expected - self.active
        unexpected = self.active - expected
        self.assertFalse(
            missing, f"rules that failed to fire: {sorted(missing)}")
        self.assertFalse(
            unexpected, f"unexpected findings: {sorted(unexpected)}")

    def test_every_shipped_rule_has_a_failing_fixture(self):
        fired = {rule for (_, _, rule) in self.active}
        # INV001 etc. must each be exercised by at least one fixture.
        self.assertEqual(fired, set(RULES),
                         "every rule needs a known-bad fixture that "
                         "triggers it")

    def test_suppressed_fixture_has_no_active_findings(self):
        bad = [t for t in self.active if t[0] == "suppressed.cpp"]
        self.assertFalse(bad, f"suppressions did not apply: {bad}")
        # ...but the suppressed violations are still visible to audits.
        hidden = [t for t in self.everything - self.active
                  if t[0] == "suppressed.cpp"]
        self.assertEqual(len(hidden), 3,
                         "suppressed.cpp should carry exactly 3 "
                         f"suppressed findings, saw {hidden}")

    def test_clean_fixture_is_silent(self):
        noisy = [t for t in self.everything if t[0] == "clean.cpp"]
        self.assertFalse(noisy, f"clean.cpp must report nothing: {noisy}")

    def test_docs_side_ghost_rows_are_reported(self):
        got = set()
        for f in self.docs_side:
            self.assertFalse(f.suppressed,
                             "docs-side findings cannot be suppressed")
            name = next((tok for tok in DOCS_SIDE_EXPECTED
                         if tok[2] in f.message), None)
            self.assertIsNotNone(
                name, f"unexpected docs-side finding: {f.message}")
            got.add((os.path.basename(f.path), f.rule, name[2]))
        self.assertEqual(got, DOCS_SIDE_EXPECTED,
                         "ghost rows in metrics_docs.md must each "
                         "produce exactly one SCHEMA001 finding")

    def test_per_rule_suppressed_fixtures(self):
        names = {t[0] for t in self.everything} | {
            os.path.basename(sf.path) for sf in self.files}
        for name in sorted(n for n in names if n.endswith("_suppressed.cpp")):
            active = [t for t in self.active if t[0] == name]
            self.assertFalse(active, f"{name}: suppression ignored: {active}")
            hidden = [t for t in self.everything - self.active
                      if t[0] == name]
            self.assertTrue(hidden,
                            f"{name} must carry >=1 suppressed finding")

    def test_per_rule_clean_fixtures_are_silent(self):
        for sf in self.files:
            name = os.path.basename(sf.path)
            if not name.endswith("_clean.cpp"):
                continue
            noisy = [t for t in self.everything if t[0] == name]
            self.assertFalse(noisy, f"{name} must report nothing: {noisy}")

    def test_owning_unit_writes_are_legal(self):
        noisy = [t for t in self.everything
                 if t[0] in ("inv001_counters.cpp", "inv001_sdr_stats.cpp")]
        self.assertFalse(
            noisy, f"owning-unit accounting was flagged: {noisy}")

    def test_suppression_reasons_survive_to_report(self):
        reasons = [f.suppress_reason for f in self.findings
                   if f.suppressed and
                   os.path.basename(f.path) == "suppressed.cpp"]
        self.assertEqual(len(reasons), 3)
        for r in reasons:
            self.assertTrue(r, "suppression lost its reason")


if __name__ == "__main__":
    unittest.main(verbosity=2)
