#!/usr/bin/env python3
"""Unit tests for the pass-1 project index (tools/ibwan_lint/index.py).

Covers the three behaviours the flow-aware rules lean on hardest:

  * unit-suffix inference (`unit_of` and declaration scanning),
  * call-graph edges that cross translation units (a header-defined
    helper that reaches `schedule` taints its callers in other files),
  * the stale-cache regression: editing one file so a cross-file fact
    changes must invalidate every cached verdict, not just the edited
    file's.

Runs under plain python3 (ctest) or pytest.
"""

import os
import shutil
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

from ibwan_lint import engine  # noqa: E402
from ibwan_lint.index import (  # noqa: E402
    ProjectIndex, build_summary, unit_of)
from ibwan_lint.model import SourceFile  # noqa: E402


def summarize(*named_sources):
    out = []
    for name, text in named_sources:
        out.append(build_summary(SourceFile(name, text)))
    return out


HEADER = """\
#pragma once
struct SimX {
  void schedule(long delay_ns, void (*cb)());
};
inline void arm_timer(SimX& sim, long delay_ns) {
  sim.schedule(delay_ns, nullptr);
}
"""

MAIN = """\
#include "util.hpp"
void kick(SimX& sim, long d_ns) { arm_timer(sim, d_ns); }
void idle(SimX& sim) { (void)sim; }
"""


class UnitInferenceTest(unittest.TestCase):
    def test_suffix_table(self):
        self.assertEqual(unit_of("elapsed_ns"), "ns")
        self.assertEqual(unit_of("window_us"), "us")
        self.assertEqual(unit_of("timeout_ms"), "ms")
        self.assertEqual(unit_of("payload_bytes"), "bytes")
        self.assertEqual(unit_of("rate_per_s"), "per_s")
        self.assertEqual(unit_of("speed_mbps"), "per_s")
        self.assertEqual(unit_of("line_bps"), "per_s")

    def test_trailing_underscore_members(self):
        self.assertEqual(unit_of("pending_bytes_"), "bytes")
        self.assertEqual(unit_of("deadline_ns_"), "ns")

    def test_non_units_stay_untyped(self):
        for name in ("banns", "_ns", "albums", "total", "nanoseconds"):
            self.assertIsNone(unit_of(name), name)

    def test_declarations_feed_var_units(self):
        (s,) = summarize(("u.cpp", """\
void f(long span_ns, unsigned long total_bytes) {
  long idle_us = 0;
  int plain = 0;
  (void)span_ns; (void)total_bytes; (void)idle_us; (void)plain;
}
"""))
        idx = ProjectIndex.build([s], None)
        self.assertEqual(idx.var_units.get("span_ns"), "ns")
        self.assertEqual(idx.var_units.get("total_bytes"), "bytes")
        self.assertEqual(idx.var_units.get("idle_us"), "us")
        self.assertNotIn("plain", idx.var_units)


class CrossHeaderCallGraphTest(unittest.TestCase):
    def test_header_helper_taints_cpp_caller(self):
        idx = ProjectIndex.build(
            summarize(("util.hpp", HEADER), ("main.cpp", MAIN)), None)
        # Direct edge inside the header...
        self.assertIn("schedule", idx.call_graph.get("arm_timer", ()))
        # ...and the cross-TU edge from the .cpp caller.
        self.assertIn("arm_timer", idx.call_graph.get("kick", ()))
        # Reverse reachability closes over both hops.
        self.assertIn("arm_timer", idx.reaches_schedule)
        self.assertIn("kick", idx.reaches_schedule)
        self.assertNotIn("idle", idx.reaches_schedule)

    def test_engine_aware_by_parameter_type(self):
        (s,) = summarize(("e.cpp", """\
struct SiteEngine;
void drive(SiteEngine& eng, int steps) { (void)eng; (void)steps; }
void bystander(int x) { (void)x; }
"""))
        idx = ProjectIndex.build([s], None)
        self.assertIn("drive", idx.engine_aware)
        self.assertNotIn("bystander", idx.engine_aware)


B_REACHES = """\
struct SimY {
  void schedule(long delay_ns, void (*cb)());
};
struct SiteEngineY {
  SimY& site(int i);
};
void fire_later(SimY& s, long d_ns) { s.schedule(d_ns, nullptr); }
"""

B_LOCAL = """\
struct SimY {
  void schedule(long delay_ns, void (*cb)());
};
struct SiteEngineY {
  SimY& site(int i);
};
void fire_later(SimY& s, long d_ns) { (void)s; (void)d_ns; }
"""

A_CALLER = """\
void drive(SiteEngineY& eng, long d_ns) {
  fire_later(eng.site(1), d_ns);
}
"""


class StaleCacheRegressionTest(unittest.TestCase):
    """Editing b.cpp changes a's verdict; the cache must notice."""

    def setUp(self):
        self.dir = tempfile.mkdtemp(prefix="ibwan_lint_idx_")
        self.cache = os.path.join(self.dir, "cache.json")
        self._write("a.cpp", A_CALLER)
        self._write("b.cpp", B_REACHES)

    def tearDown(self):
        shutil.rmtree(self.dir, ignore_errors=True)

    def _write(self, name, text):
        with open(os.path.join(self.dir, name), "w") as fh:
            fh.write(text)

    def _run(self):
        return engine.run([self.dir], cache_path=self.cache)

    def test_cross_file_fact_change_invalidates_everything(self):
        cold = self._run()
        self.assertEqual(
            [(os.path.basename(f.path), f.rule) for f in cold.findings],
            [("a.cpp", "CONC001")],
            "seed scenario should flag a.cpp handing a site engine "
            "into a schedule-reaching helper")

        # Warm, untouched: everything served from the cache, verdicts
        # identical.
        warm = self._run()
        self.assertEqual(warm.files_linted, 0)
        self.assertEqual(warm.files_cached, 2)
        self.assertEqual(
            [(f.path, f.line, f.rule) for f in warm.findings],
            [(f.path, f.line, f.rule) for f in cold.findings])

        # Edit only b.cpp so fire_later no longer reaches schedule.
        # a.cpp is byte-identical, but its cached finding is now stale:
        # the index digest change must force a full re-lint.
        self._write("b.cpp", B_LOCAL)
        third = self._run()
        self.assertEqual(third.files_linted, 2,
                         "a cross-file fact changed; serving a.cpp "
                         "from the cache would keep a stale finding")
        self.assertEqual(third.findings, [])

    def test_sha_mismatch_relints_changed_file(self):
        self._run()
        # A local-only edit (no cross-file fact changes): only the
        # touched file goes through pass 2 again.
        self._write("a.cpp", A_CALLER + "\nvoid pad(int x) { (void)x; }\n")
        warm = self._run()
        self.assertEqual(warm.files_linted, 1)
        self.assertEqual(warm.files_cached, 1)
        self.assertEqual(sorted(os.path.basename(p) for p in warm.changed),
                         ["a.cpp"])
        self.assertEqual(
            [(os.path.basename(f.path), f.rule) for f in warm.findings],
            [("a.cpp", "CONC001")])


if __name__ == "__main__":
    unittest.main(verbosity=2)
