#include "sdp/sdp.hpp"

#include <gtest/gtest.h>

#include "ib/hca.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace ibwan::sdp {
namespace {

using namespace ibwan::sim::literals;

struct SdpWorld {
  explicit SdpWorld(sim::Duration delay = 0, SdpConfig cfg = {})
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        hca_a(fabric.node(0), {}),
        hca_b(fabric.node(1), {}),
        stack_a(hca_a, cfg),
        stack_b(hca_b, cfg) {
    fabric.set_wan_delay(delay);
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca hca_a, hca_b;
  SdpStack stack_a, stack_b;
};

double stream(SdpWorld& w, std::uint64_t bytes) {
  std::uint64_t delivered = 0;
  w.stack_b.listen(22, [&](SdpConnection& c) {
    c.set_on_delivered([&](std::uint64_t total) { delivered = total; });
  });
  SdpConnection& c = w.stack_a.connect(w.stack_b, 22);
  c.send(bytes);
  sim::Time done = 0;
  c.set_on_acked([&](std::uint64_t acked) {
    if (acked == bytes) done = w.sim.now();
  });
  w.sim.run();
  EXPECT_EQ(delivered, bytes);
  EXPECT_EQ(c.bytes_acked(), bytes);
  return static_cast<double>(bytes) / sim::to_seconds(done) / 1e6;
}

TEST(Sdp, DeliversEveryByte) {
  SdpWorld w;
  stream(w, 10'000'000);
}

TEST(Sdp, ZeroCopyApproachesVerbsBandwidth) {
  SdpWorld w;
  const double mbps = stream(w, 128 << 20);
  // SDP's selling point: ~950+ MB/s where IPoIB manages ~330.
  EXPECT_GT(mbps, 900.0);
  EXPECT_LT(mbps, 1000.0);
}

TEST(Sdp, InheritsRcWindowCliffOverWan) {
  SdpWorld w(1000_us);
  const double mbps = stream(w, 32 << 20);
  // 16 msgs x 64 KB in flight over a ~2 ms RTT: about 500 MB/s.
  EXPECT_LT(mbps, 600.0);
  EXPECT_GT(mbps, 300.0);
}

TEST(Sdp, SmallSendsPayBcopy) {
  SdpConfig cfg;
  cfg.message_bytes = 4096;  // force the bcopy path per segment
  SdpWorld w(0, cfg);
  const double small_seg = stream(w, 16 << 20);
  SdpWorld w2;
  const double big_seg = stream(w2, 16 << 20);
  EXPECT_GT(big_seg, small_seg);
}

TEST(Sdp, MultipleConnectionsShareFairly) {
  SdpWorld w;
  std::uint64_t d1 = 0, d2 = 0;
  int accepts = 0;
  w.stack_b.listen(22, [&](SdpConnection& c) {
    auto* target = (accepts++ == 0) ? &d1 : &d2;
    c.set_on_delivered([target](std::uint64_t total) { *target = total; });
  });
  SdpConnection& c1 = w.stack_a.connect(w.stack_b, 22);
  SdpConnection& c2 = w.stack_a.connect(w.stack_b, 22);
  c1.send(4 << 20);
  c2.send(4 << 20);
  w.sim.run();
  EXPECT_EQ(d1, 4u << 20);
  EXPECT_EQ(d2, 4u << 20);
}

}  // namespace
}  // namespace ibwan::sdp
