// Extension module: PFS striping over NFS mounts. (The KV tests that
// used to live here moved to tests/kv/ when the replicated serving
// suite split the KV test tree out.)
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "net/fabric.hpp"
#include "nfs/nfs.hpp"
#include "pfs/pfs.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan {
namespace {

using namespace ibwan::sim::literals;

/// K object servers in cluster A, one client host in cluster B.
struct PfsWorld {
  PfsWorld(int servers, sim::Duration delay)
      : fabric(sim, {.nodes_a = servers, .nodes_b = 1}) {
    fabric.set_wan_delay(delay);
    client_hca = std::make_unique<ib::Hca>(
        fabric.node(fabric.node_id(net::Cluster::kB, 0)), ib::HcaConfig{});
    for (int s = 0; s < servers; ++s) {
      server_hcas.push_back(std::make_unique<ib::Hca>(
          fabric.node(fabric.node_id(net::Cluster::kA, s)),
          ib::HcaConfig{.rc_max_inflight_msgs = 64}));
      rpc_servers.push_back(
          std::make_unique<rpc::RdmaRpcServer>(*server_hcas.back()));
      rpc_clients.push_back(std::make_unique<rpc::RdmaRpcClient>(
          *client_hca, *rpc_servers.back()));
      nfs_servers.push_back(std::make_unique<nfs::NfsServer>(
          sim, nfs::NfsConfig{.chunk_bytes = 4096}));
      rpc_servers.back()->set_handler(nfs_servers.back()->handler());
      nfs_clients.push_back(
          std::make_unique<nfs::NfsClient>(*rpc_clients.back()));
      mounts.push_back(nfs_clients.back().get());
    }
  }

  void provision(std::uint64_t logical_bytes) {
    // Each object server stores its share of stripes (over-provisioned
    // to the full size for simplicity; reads are bounded by the plan).
    for (auto& s : nfs_servers) s->add_file(1, logical_bytes);
  }

  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<ib::Hca> client_hca;
  std::vector<std::unique_ptr<ib::Hca>> server_hcas;
  std::vector<std::unique_ptr<rpc::RdmaRpcServer>> rpc_servers;
  std::vector<std::unique_ptr<rpc::RdmaRpcClient>> rpc_clients;
  std::vector<std::unique_ptr<nfs::NfsServer>> nfs_servers;
  std::vector<std::unique_ptr<nfs::NfsClient>> nfs_clients;
  std::vector<nfs::NfsClient*> mounts;
};

TEST(Pfs, PlanCoversExactlyOnce) {
  PfsWorld w(4, 0);
  w.provision(64 << 20);
  pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 1 << 20});
  std::uint64_t got = 0;
  [](pfs::StripedFile& f, std::uint64_t* out) -> sim::Task {
    *out = co_await f.read(3 << 20, 9 << 20);  // straddles stripes
  }(file, &got);
  w.sim.run();
  EXPECT_EQ(got, 9u << 20);
}

TEST(Pfs, UnalignedReadsComplete) {
  PfsWorld w(3, 0);
  w.provision(8 << 20);
  pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 333'333});
  std::uint64_t got = 0;
  [](pfs::StripedFile& f, std::uint64_t* out) -> sim::Task {
    *out = co_await f.read(12'345, 2'000'000);
  }(file, &got);
  w.sim.run();
  EXPECT_EQ(got, 2'000'000u);
}

TEST(Pfs, WritesComplete) {
  PfsWorld w(2, 0);
  w.provision(0);
  pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 1 << 20});
  [](pfs::StripedFile& f) -> sim::Task {
    co_await f.write(0, 4 << 20);
  }(file);
  w.sim.run();
  std::uint64_t stored = 0;
  for (auto& s : w.nfs_servers) stored += s->stats().bytes_written;
  EXPECT_EQ(stored, 4u << 20);
}

TEST(Pfs, StripingScalesWanReadThroughput) {
  auto mbps = [](int servers) {
    PfsWorld w(servers, 1000_us);
    w.provision(32 << 20);
    pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 1 << 20});
    return pfs::run_striped_read(w.sim, file, 32 << 20, 4 << 20, 2)
        .mbytes_per_sec;
  };
  const double one = mbps(1);
  const double four = mbps(4);
  EXPECT_GT(four, 2.5 * one);
}

}  // namespace
}  // namespace ibwan
