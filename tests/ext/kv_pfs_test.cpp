// Extension modules: RDMA key-value service and PFS striping.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "kv/kv.hpp"
#include "net/fabric.hpp"
#include "nfs/nfs.hpp"
#include "pfs/pfs.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan {
namespace {

using namespace ibwan::sim::literals;

// ---------------------------------------------------------------------------
// KV
// ---------------------------------------------------------------------------

struct KvWorld {
  explicit KvWorld(sim::Duration delay = 0)
      : fabric(sim, {.nodes_a = 1, .nodes_b = 1}),
        server_hca(fabric.node(0), {}),
        client_hca(fabric.node(1), {}),
        rpc_server(server_hca),
        rpc_client(client_hca, rpc_server),
        server(sim),
        client(rpc_client) {
    fabric.set_wan_delay(delay);
    rpc_server.set_handler(server.handler());
  }
  sim::Simulator sim;
  net::Fabric fabric;
  ib::Hca server_hca, client_hca;
  rpc::RdmaRpcServer rpc_server;
  rpc::RdmaRpcClient rpc_client;
  kv::KvServer server;
  kv::KvClient client;
};

TEST(Kv, GetReturnsValueSizeAndMissReturnsZero) {
  KvWorld w;
  w.server.preload(5, 4096);
  std::uint64_t hit = 1, miss = 1;
  [](KvWorld& kw, std::uint64_t* h, std::uint64_t* m) -> sim::Task {
    *h = co_await kw.client.get(5);
    *m = co_await kw.client.get(6);
  }(w, &hit, &miss);
  w.sim.run();
  EXPECT_EQ(hit, 4096u);
  EXPECT_EQ(miss, 0u);
  EXPECT_EQ(w.server.stats().gets, 2u);
  EXPECT_EQ(w.server.stats().misses, 1u);
}

TEST(Kv, PutStoresValue) {
  KvWorld w;
  [](KvWorld& kw) -> sim::Task {
    co_await kw.client.put(9, 100'000);
  }(w);
  w.sim.run();
  EXPECT_EQ(w.server.value_size(9), 100'000u);
  EXPECT_EQ(w.server.stats().puts, 1u);
}

TEST(Kv, GetLatencyTracksWanDelay) {
  auto latency_us = [](sim::Duration delay) {
    KvWorld w(delay);
    w.server.preload(1, 128);
    sim::Time t0 = 0, t1 = 0;
    [](KvWorld& kw, sim::Time* a, sim::Time* b) -> sim::Task {
      *a = kw.sim.now();
      co_await kw.client.get(1);
      *b = kw.sim.now();
    }(w, &t0, &t1);
    w.sim.run();
    return sim::to_microseconds(t1 - t0);
  };
  const double lan = latency_us(0);
  const double wan = latency_us(1000_us);
  EXPECT_GT(wan, 2000.0);  // one RPC round trip
  EXPECT_LT(wan, 2100.0);
  EXPECT_LT(lan, 100.0);
}

TEST(Kv, WorkloadRunsAllOps) {
  KvWorld w(100_us);
  for (std::uint64_t k = 0; k < 64; ++k) w.server.preload(k, 4096);
  const kv::KvWorkloadConfig cfg{.clients = 4,
                                 .ops_per_client = 50,
                                 .get_fraction = 0.8,
                                 .value_bytes = 4096,
                                 .key_space = 64};
  const auto r = kv::run_kv_workload(w.sim, w.client, cfg);
  EXPECT_EQ(r.ops, 200u);
  EXPECT_GT(r.kops_per_sec, 0.0);
  EXPECT_GT(r.avg_latency_us, 200.0);  // at least the RTT
  EXPECT_EQ(w.server.stats().gets + w.server.stats().puts, 200u);
}

TEST(Kv, MoreClientsRaiseThroughputUnderDelay) {
  auto kops = [](int clients) {
    KvWorld w(1000_us);
    for (std::uint64_t k = 0; k < 64; ++k) w.server.preload(k, 1024);
    return kv::run_kv_workload(w.sim, w.client,
                               {.clients = clients,
                                .ops_per_client = 40,
                                .value_bytes = 1024,
                                .key_space = 64})
        .kops_per_sec;
  };
  EXPECT_GT(kops(8), 4.0 * kops(1));
}

// ---------------------------------------------------------------------------
// PFS
// ---------------------------------------------------------------------------

/// K object servers in cluster A, one client host in cluster B.
struct PfsWorld {
  PfsWorld(int servers, sim::Duration delay)
      : fabric(sim, {.nodes_a = servers, .nodes_b = 1}) {
    fabric.set_wan_delay(delay);
    client_hca = std::make_unique<ib::Hca>(
        fabric.node(fabric.node_id(net::Cluster::kB, 0)), ib::HcaConfig{});
    for (int s = 0; s < servers; ++s) {
      server_hcas.push_back(std::make_unique<ib::Hca>(
          fabric.node(fabric.node_id(net::Cluster::kA, s)),
          ib::HcaConfig{.rc_max_inflight_msgs = 64}));
      rpc_servers.push_back(
          std::make_unique<rpc::RdmaRpcServer>(*server_hcas.back()));
      rpc_clients.push_back(std::make_unique<rpc::RdmaRpcClient>(
          *client_hca, *rpc_servers.back()));
      nfs_servers.push_back(std::make_unique<nfs::NfsServer>(
          sim, nfs::NfsConfig{.chunk_bytes = 4096}));
      rpc_servers.back()->set_handler(nfs_servers.back()->handler());
      nfs_clients.push_back(
          std::make_unique<nfs::NfsClient>(*rpc_clients.back()));
      mounts.push_back(nfs_clients.back().get());
    }
  }

  void provision(std::uint64_t logical_bytes) {
    // Each object server stores its share of stripes (over-provisioned
    // to the full size for simplicity; reads are bounded by the plan).
    for (auto& s : nfs_servers) s->add_file(1, logical_bytes);
  }

  sim::Simulator sim;
  net::Fabric fabric;
  std::unique_ptr<ib::Hca> client_hca;
  std::vector<std::unique_ptr<ib::Hca>> server_hcas;
  std::vector<std::unique_ptr<rpc::RdmaRpcServer>> rpc_servers;
  std::vector<std::unique_ptr<rpc::RdmaRpcClient>> rpc_clients;
  std::vector<std::unique_ptr<nfs::NfsServer>> nfs_servers;
  std::vector<std::unique_ptr<nfs::NfsClient>> nfs_clients;
  std::vector<nfs::NfsClient*> mounts;
};

TEST(Pfs, PlanCoversExactlyOnce) {
  PfsWorld w(4, 0);
  w.provision(64 << 20);
  pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 1 << 20});
  std::uint64_t got = 0;
  [](pfs::StripedFile& f, std::uint64_t* out) -> sim::Task {
    *out = co_await f.read(3 << 20, 9 << 20);  // straddles stripes
  }(file, &got);
  w.sim.run();
  EXPECT_EQ(got, 9u << 20);
}

TEST(Pfs, UnalignedReadsComplete) {
  PfsWorld w(3, 0);
  w.provision(8 << 20);
  pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 333'333});
  std::uint64_t got = 0;
  [](pfs::StripedFile& f, std::uint64_t* out) -> sim::Task {
    *out = co_await f.read(12'345, 2'000'000);
  }(file, &got);
  w.sim.run();
  EXPECT_EQ(got, 2'000'000u);
}

TEST(Pfs, WritesComplete) {
  PfsWorld w(2, 0);
  w.provision(0);
  pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 1 << 20});
  [](pfs::StripedFile& f) -> sim::Task {
    co_await f.write(0, 4 << 20);
  }(file);
  w.sim.run();
  std::uint64_t stored = 0;
  for (auto& s : w.nfs_servers) stored += s->stats().bytes_written;
  EXPECT_EQ(stored, 4u << 20);
}

TEST(Pfs, StripingScalesWanReadThroughput) {
  auto mbps = [](int servers) {
    PfsWorld w(servers, 1000_us);
    w.provision(32 << 20);
    pfs::StripedFile file(w.sim, w.mounts, 1, {.stripe_bytes = 1 << 20});
    return pfs::run_striped_read(w.sim, file, 32 << 20, 4 << 20, 2)
        .mbytes_per_sec;
  };
  const double one = mbps(1);
  const double four = mbps(4);
  EXPECT_GT(four, 2.5 * one);
}

}  // namespace
}  // namespace ibwan
